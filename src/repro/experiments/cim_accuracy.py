"""End-to-end network accuracy through the functional CiM path.

The integration experiment behind the paper's "almost no accuracy
loss" framing: a classifier trained in float is compiled onto the
functional macro simulation (:func:`repro.runtime.compile`) and
evaluated across the circuit knobs the other studies sweep in
isolation — ADC resolution, word-line encoding, and bit-line noise —
so their MVM-level error numbers get an accuracy column.

The model is programmed once per circuit corner; the word-line
encoding is an execution-time option of :meth:`CompiledModel.run`, so
the encoding sweep reuses each corner's programmed engines instead of
redeploying the network per encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.cim import (
    AdcSpec,
    BitlineModel,
    MacroConfig,
    encoding_by_name,
)
from repro.datasets import classification_suite
from repro.eval.classification import accuracy
from repro.rebranch import TrainConfig, TransferTrainer
from repro.runtime import EngineCache, RuntimeConfig, compile_model


@dataclass
class CimAccuracyConfig:
    adc_bits_list: Sequence[int] = (4, 5, 8)
    encodings: Sequence[str] = ("bit-serial", "unary-pulse", "pulse-width")
    noise_sigmas: Sequence[float] = (0.0, 2.0)
    train_epochs: int = 15
    n_train: int = 512
    n_eval: int = 96
    seed: int = 0


def fast_config() -> CimAccuracyConfig:
    return CimAccuracyConfig(
        adc_bits_list=(5, 8),
        encodings=("bit-serial", "pulse-width"),
        noise_sigmas=(0.0,),
        train_epochs=10,
        n_train=320,
        n_eval=64,
    )


def full_config() -> CimAccuracyConfig:
    return CimAccuracyConfig()


@dataclass
class CimAccuracyPoint:
    adc_bits: int
    encoding: str
    noise_sigma: float
    accuracy: float
    energy_per_mac_fj: float
    latency_ns: float


@dataclass
class CimAccuracyResult:
    float_accuracy: float = 0.0
    points: List[CimAccuracyPoint] = field(default_factory=list)

    def at(
        self, adc_bits: int, encoding: str, noise_sigma: float = 0.0
    ) -> CimAccuracyPoint:
        for p in self.points:
            if (
                p.adc_bits == adc_bits
                and p.encoding == encoding
                and p.noise_sigma == noise_sigma
            ):
                return p
        raise KeyError(f"no point ({adc_bits}b, {encoding}, sigma={noise_sigma})")

    def rows(self) -> List[Tuple]:
        return [
            (
                p.adc_bits,
                p.encoding,
                p.noise_sigma,
                p.accuracy,
                p.energy_per_mac_fj,
            )
            for p in self.points
        ]


def _build_and_train(splits, epochs: int, seed: int) -> nn.Module:
    """A deployable chain (no BN, no residual adds) of modest size."""
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Conv2d(3, 24, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(24, 48, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(48 * 4 * 4, splits.num_classes, rng=rng),
    )
    TransferTrainer(model, TrainConfig(epochs=epochs, lr=2e-3, seed=seed)).fit(
        splits.x_train, splits.y_train
    )
    return model


def _float_logits(model: nn.Module, x: np.ndarray) -> np.ndarray:
    from repro.nn.tensor import Tensor, no_grad

    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def run(config: Optional[CimAccuracyConfig] = None) -> CimAccuracyResult:
    """Train once, deploy at every circuit corner, report accuracy."""
    config = config if config is not None else fast_config()
    suite = classification_suite(seed=config.seed)
    splits = suite.source_splits(n_train=config.n_train, n_test=config.n_eval)
    model = _build_and_train(splits, config.train_epochs, config.seed)

    x_eval = splits.x_test[: config.n_eval]
    y_eval = splits.y_test[: config.n_eval]
    result = CimAccuracyResult(
        float_accuracy=accuracy(_float_logits(model, x_eval), y_eval)
    )
    # Scoped cache: per-corner engines are never reused after the sweep,
    # so do not pin them in the process-wide cache.
    cache = EngineCache()

    for adc_bits in config.adc_bits_list:
        for noise_sigma in config.noise_sigmas:
            macro_config = MacroConfig(
                adc=AdcSpec(bits=adc_bits),
                bitline=BitlineModel(noise_sigma_counts=noise_sigma),
            )
            # Program the macros once per circuit corner; every encoding
            # below streams through the same compiled engines.
            compiled = compile_model(
                model,
                RuntimeConfig(
                    rom_config=macro_config, sram_config=macro_config
                ),
                cache=cache,
            )
            for name in config.encodings:
                encoding = (
                    None if name == "bit-serial" else encoding_by_name(name)
                )
                logits, stats = compiled.run(
                    x_eval,
                    encoding=encoding,
                    rng=np.random.default_rng(config.seed + 1),
                )
                result.points.append(
                    CimAccuracyPoint(
                        adc_bits=adc_bits,
                        encoding=name,
                        noise_sigma=noise_sigma,
                        accuracy=accuracy(logits, y_eval),
                        energy_per_mac_fj=stats.energy_per_mac_fj,
                        latency_ns=stats.latency_ns,
                    )
                )
    return result
