"""On-chip training cost model (section 3.3).

"[YOLoC] also provides a chance to greatly reduce the on-chip training
overhead, especially when performing on-chip large-scale neural
networks training [8] in SRAM-CiM."  This module quantifies that
sentence by costing one SGD step under two regimes:

``full``
    Every weight is trainable, so every weight must sit in (writable)
    SRAM-CiM, every layer computes a weight gradient, and every weight
    is rewritten each step.  Models beyond the chip's SRAM capacity
    additionally stream weights *and* gradients through DRAM.

``rebranch``
    The YOLoC regime: the ROM trunk is frozen — it still runs forward
    and propagates activation gradients (the branch layers live at
    every depth), but computes no weight gradients and performs no
    writes.  Only the res-conv weights (1/(D*U) of the trunk) are
    updated in SRAM-CiM.

The per-step energy follows the standard 3x-forward decomposition:
forward MACs, activation-gradient MACs (all layers), weight-gradient
MACs (trainable layers only), plus array-write and optimizer-state
traffic for the updated weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.mapping import WeightMapping, activation_traffic_bits, map_model
from repro.arch.memory import DramSpec, SramBufferModel
from repro.arch.system import SRAM_CIM_WRITE_PJ_PER_BIT
from repro.cim.spec import MacroSpec, rom_macro_spec, sram_macro_spec
from repro.models.profile import ModelProfile

#: Optimizer state (SGD momentum) read + written per trainable weight,
#: in state words per weight.
OPTIMIZER_STATE_WORDS = 1


@dataclass
class TrainingStepCost:
    """Energy and traffic of one SGD step (one mini-batch sample)."""

    regime: str
    forward_pj: float = 0.0
    activation_grad_pj: float = 0.0
    weight_grad_pj: float = 0.0
    array_write_pj: float = 0.0
    optimizer_state_pj: float = 0.0
    dram_pj: float = 0.0
    trainable_bits: int = 0
    total_weight_bits: int = 0

    @property
    def total_pj(self) -> float:
        return (
            self.forward_pj
            + self.activation_grad_pj
            + self.weight_grad_pj
            + self.array_write_pj
            + self.optimizer_state_pj
            + self.dram_pj
        )

    @property
    def trainable_fraction(self) -> float:
        if self.total_weight_bits == 0:
            return 0.0
        return self.trainable_bits / self.total_weight_bits


@dataclass
class TrainingCostModel:
    """Shared constants of the per-step accounting."""

    rom_spec: Optional[MacroSpec] = None
    sram_spec: Optional[MacroSpec] = None
    buffer: Optional[SramBufferModel] = None
    dram: Optional[DramSpec] = None
    weight_bits: int = 8
    #: Gradients are kept at higher precision than inference weights.
    gradient_bits: int = 16
    #: On-chip SRAM-CiM capacity available to hold trainable weights.
    sram_capacity_bits: int = 50_000_000

    def __post_init__(self):
        if self.rom_spec is None:
            self.rom_spec = rom_macro_spec()
        if self.sram_spec is None:
            self.sram_spec = sram_macro_spec()
        if self.buffer is None:
            self.buffer = SramBufferModel()
        if self.dram is None:
            self.dram = DramSpec()

    def _mac_energy_pj(self, rom_macs: float, sram_macs: float) -> float:
        return (
            rom_macs * self.rom_spec.energy_per_op_fj
            + sram_macs * self.sram_spec.energy_per_op_fj
        ) / 1000.0

    def step_cost(
        self,
        profile: ModelProfile,
        regime: str,
        d: int = 4,
        u: int = 4,
    ) -> TrainingStepCost:
        """Cost one SGD step for ``regime`` in {'full', 'rebranch'}."""
        if regime == "full":
            mapping = map_model(profile, "all_sram", weight_bits=self.weight_bits)
            trainable_bits = mapping.total_weight_bits
            forward = self._mac_energy_pj(0, mapping.total_macs)
            act_grad = self._mac_energy_pj(0, mapping.total_macs)
            weight_grad = self._mac_energy_pj(0, mapping.total_macs)
        elif regime == "rebranch":
            mapping = map_model(
                profile, "yoloc", d=d, u=u, weight_bits=self.weight_bits
            )
            trainable_bits = mapping.sram_weight_bits
            forward = self._mac_energy_pj(mapping.rom_macs, mapping.sram_macs)
            # Activation gradients traverse every layer (branches sit at
            # all depths); the frozen trunk runs them on its ROM arrays.
            act_grad = self._mac_energy_pj(mapping.rom_macs, mapping.sram_macs)
            # Weight gradients only for the SRAM-resident res-convs/head.
            weight_grad = self._mac_energy_pj(0, mapping.sram_macs)
        else:
            raise ValueError(f"unknown training regime {regime!r}")

        cost = TrainingStepCost(
            regime=regime,
            forward_pj=forward,
            activation_grad_pj=act_grad,
            weight_grad_pj=weight_grad,
            trainable_bits=trainable_bits,
            total_weight_bits=mapping.total_weight_bits,
        )
        cost.array_write_pj = trainable_bits * SRAM_CIM_WRITE_PJ_PER_BIT
        state_bits = (
            trainable_bits
            * OPTIMIZER_STATE_WORDS
            * self.gradient_bits
            / self.weight_bits
        )
        # Momentum read + write through the on-chip buffer each step.
        cost.optimizer_state_pj = self.buffer.access_energy_pj(2 * state_bits)

        # Weights (and their gradients) that exceed on-chip SRAM stream
        # through DRAM every step: out on the gradient path, back in
        # after the host-side update.
        overflow = max(0, trainable_bits - self.sram_capacity_bits)
        grad_traffic = overflow * self.gradient_bits / self.weight_bits
        cost.dram_pj = self.dram.access_energy_pj(overflow + grad_traffic)
        return cost

    def summary(
        self, profile: ModelProfile, d: int = 4, u: int = 4
    ) -> Dict[str, float]:
        """Full-vs-ReBranch comparison for one model."""
        full = self.step_cost(profile, "full", d=d, u=u)
        rebranch = self.step_cost(profile, "rebranch", d=d, u=u)
        act_bits = activation_traffic_bits(profile, self.weight_bits)
        return {
            "full_step_uj": full.total_pj / 1e6,
            "rebranch_step_uj": rebranch.total_pj / 1e6,
            "energy_saving": full.total_pj / rebranch.total_pj,
            "full_trainable_mbits": full.trainable_bits / 1e6,
            "rebranch_trainable_mbits": rebranch.trainable_bits / 1e6,
            "trainable_reduction": (
                full.trainable_bits / rebranch.trainable_bits
                if rebranch.trainable_bits
                else float("inf")
            ),
            "full_dram_uj": full.dram_pj / 1e6,
            "rebranch_dram_uj": rebranch.dram_pj / 1e6,
            "activation_traffic_mbits": act_bits / 1e6,
        }
