"""Ping-pong / pipelined weight reload (section 4.3.3).

"Ping-Pong and pipelining techniques can relieve the latency issue, but
little could be done to the energy overhead while designing an SRAM-CiM
macro."  This module quantifies both halves of that sentence for the
single-chip SRAM-CiM baseline (Fig. 13b):

* :func:`serial_schedule` — each layer waits for its DRAM weight load,
  then computes: the makespan the paper's latency numbers assume.
* :func:`double_buffered_schedule` — ping-pong CiM in the style of [9]:
  while one bank computes layer ``l``, the DRAM channel fills the other
  bank with layer ``l+1``'s weights.  The makespan approaches
  ``max(total_compute, total_load)`` instead of their sum.

The energy side needs no scheduler: the same weight bits cross the DRAM
interface either way, so :func:`relief_summary` reports identical
energy for both schedules — the paper's "little could be done" —
alongside the latency relief the overlap buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.memory import DramSpec
from repro.models.profile import ModelProfile


@dataclass(frozen=True)
class LayerTask:
    """One layer's pipeline workload."""

    name: str
    compute_ns: float
    load_bits: float
    load_ns: float

    def __post_init__(self):
        if self.compute_ns < 0 or self.load_bits < 0 or self.load_ns < 0:
            raise ValueError(f"negative workload in task {self.name!r}")


@dataclass
class ScheduleEntry:
    """Realized timing of one task."""

    name: str
    load_start_ns: float
    load_end_ns: float
    compute_start_ns: float
    compute_end_ns: float


@dataclass
class Schedule:
    """A complete timeline for one inference."""

    policy: str
    entries: List[ScheduleEntry] = field(default_factory=list)

    @property
    def makespan_ns(self) -> float:
        return max((e.compute_end_ns for e in self.entries), default=0.0)

    @property
    def compute_busy_ns(self) -> float:
        return sum(e.compute_end_ns - e.compute_start_ns for e in self.entries)

    @property
    def load_busy_ns(self) -> float:
        return sum(e.load_end_ns - e.load_start_ns for e in self.entries)

    @property
    def compute_utilization(self) -> float:
        span = self.makespan_ns
        return self.compute_busy_ns / span if span else 0.0

    def validate(self) -> None:
        """Check the physical constraints every legal timeline obeys."""
        prev_load_end = 0.0
        prev_compute_end = 0.0
        for entry in self.entries:
            if entry.load_start_ns < prev_load_end - 1e-9:
                raise AssertionError(
                    f"{entry.name}: DRAM channel double-booked"
                )
            if entry.compute_start_ns < entry.load_end_ns - 1e-9:
                raise AssertionError(
                    f"{entry.name}: compute started before weights arrived"
                )
            if entry.compute_start_ns < prev_compute_end - 1e-9:
                raise AssertionError(
                    f"{entry.name}: two layers computing at once"
                )
            prev_load_end = entry.load_end_ns
            prev_compute_end = entry.compute_end_ns


def serial_schedule(tasks: Sequence[LayerTask]) -> Schedule:
    """Load-then-compute, one layer at a time (no overlap)."""
    schedule = Schedule(policy="serial")
    clock = 0.0
    for task in tasks:
        load_start = clock
        load_end = load_start + task.load_ns
        compute_end = load_end + task.compute_ns
        schedule.entries.append(
            ScheduleEntry(task.name, load_start, load_end, load_end, compute_end)
        )
        clock = compute_end
    return schedule


def double_buffered_schedule(
    tasks: Sequence[LayerTask],
    compute_slowdown: float = 1.0,
) -> Schedule:
    """Ping-pong banks: load layer ``l+1`` while layer ``l`` computes.

    With two banks, the bank receiving layer ``l``'s weights is the one
    layer ``l-2`` computed from, so a load may not begin before that
    compute retires.  ``compute_slowdown`` models bank-switched macros
    that give up part of their compute parallelism to the write port
    (1.0 = a dedicated shadow bank, the [9] organization).
    """
    if compute_slowdown < 1.0:
        raise ValueError("compute_slowdown cannot be < 1 (that would be a speedup)")
    schedule = Schedule(policy="ping-pong")
    load_free = 0.0  # DRAM channel availability
    compute_free = 0.0  # the single compute resource
    bank_free = [0.0, 0.0]  # when each bank's previous contents retire
    for index, task in enumerate(tasks):
        bank = index % 2
        load_start = max(load_free, bank_free[bank])
        load_end = load_start + task.load_ns
        compute_start = max(load_end, compute_free)
        compute_end = compute_start + task.compute_ns * compute_slowdown
        schedule.entries.append(
            ScheduleEntry(task.name, load_start, load_end, compute_start, compute_end)
        )
        load_free = load_end
        compute_free = compute_end
        bank_free[bank] = compute_end
    return schedule


def tasks_for_single_chip(
    profile: ModelProfile,
    chip_capacity_bits: float,
    chip_gops: float,
    dram: Optional[DramSpec] = None,
    weight_bits: int = 8,
    reload_factor: int = 1,
) -> List[LayerTask]:
    """Per-layer load/compute workloads for the Fig. 13(b) baseline.

    Weights stay resident in layer order until the chip's CiM capacity
    is exhausted; every later layer streams from DRAM each inference
    (``reload_factor`` times when activation tiling forces re-fetch).
    """
    if chip_gops <= 0:
        raise ValueError("chip throughput must be positive")
    if chip_capacity_bits < 0:
        raise ValueError("chip capacity cannot be negative")
    dram = dram if dram is not None else DramSpec()
    tasks = []
    resident_budget = float(chip_capacity_bits)
    for layer in profile.weight_layers():
        bits = layer.params * weight_bits
        if bits <= resident_budget:
            resident_budget -= bits
            load_bits = 0.0
        else:
            load_bits = float(bits * reload_factor)
        tasks.append(
            LayerTask(
                name=layer.name,
                compute_ns=layer.macs / chip_gops,
                load_bits=load_bits,
                load_ns=dram.transfer_time_ns(load_bits),
            )
        )
    return tasks


def tasks_for_compiled(
    compiled,
    input_shape,
    chip_capacity_bits: float,
    chip_gops: float,
    dram: Optional[DramSpec] = None,
    weight_bits: int = 8,
    reload_factor: int = 1,
) -> List[LayerTask]:
    """Per-layer pipeline workloads for a compiled runtime model.

    ``compiled`` is a :class:`~repro.runtime.CompiledModel`; its cached
    analytic profile drives :func:`tasks_for_single_chip`, so schedule
    studies run against the same programmed artifact the deployment
    runtime executes.
    """
    return tasks_for_single_chip(
        compiled.profile(input_shape),
        chip_capacity_bits,
        chip_gops,
        dram=dram,
        weight_bits=weight_bits,
        reload_factor=reload_factor,
    )


def relief_summary(
    tasks: Sequence[LayerTask],
    dram: Optional[DramSpec] = None,
    compute_slowdown: float = 1.0,
) -> Dict[str, float]:
    """Latency relief and (unchanged) DRAM energy of the overlap.

    The keys spell out the paper's sentence: ``latency_relief`` is what
    ping-pong buys; ``serial_dram_pj == pingpong_dram_pj`` is the
    energy that "little could be done" about.
    """
    dram = dram if dram is not None else DramSpec()
    serial = serial_schedule(tasks)
    pingpong = double_buffered_schedule(tasks, compute_slowdown=compute_slowdown)
    serial.validate()
    pingpong.validate()
    total_load_bits = sum(t.load_bits for t in tasks)
    dram_pj = dram.access_energy_pj(total_load_bits)
    return {
        "serial_ns": serial.makespan_ns,
        "pingpong_ns": pingpong.makespan_ns,
        "latency_relief": (
            serial.makespan_ns / pingpong.makespan_ns
            if pingpong.makespan_ns
            else 1.0
        ),
        "serial_dram_pj": dram_pj,
        "pingpong_dram_pj": dram_pj,
        "compute_utilization_serial": serial.compute_utilization,
        "compute_utilization_pingpong": pingpong.compute_utilization,
        "total_load_bits": total_load_bits,
    }
