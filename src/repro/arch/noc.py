"""On-chip network model for the YOLoC floorplan (Fig. 9).

Fig. 9 draws a NoC joining the ROM-CiM macros, SRAM-CiM macros, cache,
and controller; the paper's energy accounting then treats on-chip
activation movement as part of the buffer term.  This module checks
that simplification instead of assuming it: a 2-D mesh with XY routing
(the standard CiM-accelerator fabric), analytic per-hop energy and
latency, and a layer-to-tile traffic mapper.

The expected outcome — and the reason the paper can ignore it — is that
NoC transport energy is a single-digit percentage of the CiM compute
energy for every benchmark model (see the ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.models.profile import ModelProfile

Coord = Tuple[int, int]


@dataclass(frozen=True)
class MeshNocSpec:
    """A ``rows x cols`` 2-D mesh with XY dimension-ordered routing."""

    rows: int = 4
    cols: int = 4
    #: Energy to move one bit across one router + link hop (pJ/bit).
    #: 28nm-class on-chip links are ~two orders cheaper than the
    #: SIMBA off-package link (1.17 pJ/b).
    hop_energy_pj_per_bit: float = 0.012
    #: Router traversal latency per hop.
    hop_latency_ns: float = 0.5
    #: Link width: bits accepted per hop per cycle.
    link_width_bits: int = 64

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"mesh must be at least 1x1, got {self.rows}x{self.cols}")

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    def tile_coord(self, index: int) -> Coord:
        if not 0 <= index < self.n_tiles:
            raise IndexError(f"tile {index} outside a {self.rows}x{self.cols} mesh")
        return divmod(index, self.cols)

    def hops(self, src: int, dst: int) -> int:
        """XY-routing hop count (Manhattan distance)."""
        (r1, c1), (r2, c2) = self.tile_coord(src), self.tile_coord(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def graph(self) -> nx.Graph:
        """The mesh as a networkx graph (tile index nodes)."""
        grid = nx.grid_2d_graph(self.rows, self.cols)
        return nx.relabel_nodes(
            grid, {coord: coord[0] * self.cols + coord[1] for coord in grid.nodes}
        )

    def route(self, src: int, dst: int) -> List[int]:
        """The XY route as a tile sequence (X first, then Y)."""
        (r1, c1), (r2, c2) = self.tile_coord(src), self.tile_coord(dst)
        path = [src]
        c = c1
        while c != c2:
            c += 1 if c2 > c else -1
            path.append(r1 * self.cols + c)
        r = r1
        while r != r2:
            r += 1 if r2 > r else -1
            path.append(r * self.cols + c2)
        return path

    def transfer_energy_pj(self, bits: float, src: int, dst: int) -> float:
        return bits * self.hops(src, dst) * self.hop_energy_pj_per_bit

    def transfer_latency_ns(self, bits: float, src: int, dst: int) -> float:
        """Wormhole latency: head hops + body serialization."""
        hops = self.hops(src, dst)
        if hops == 0:
            return 0.0
        serialization = math.ceil(bits / self.link_width_bits)
        return (hops + serialization - 1) * self.hop_latency_ns

    @property
    def average_hops(self) -> float:
        """Mean XY distance under uniform-random traffic."""
        total = 0
        for src in range(self.n_tiles):
            for dst in range(self.n_tiles):
                total += self.hops(src, dst)
        return total / self.n_tiles**2


@dataclass
class NocTrafficReport:
    """Per-inference NoC cost of one layer-to-tile mapping."""

    spec: MeshNocSpec
    flows: List[Tuple[str, int, int, float]] = field(default_factory=list)

    @property
    def total_bits(self) -> float:
        return sum(bits for _, _, _, bits in self.flows)

    @property
    def total_energy_pj(self) -> float:
        return sum(
            self.spec.transfer_energy_pj(bits, src, dst)
            for _, src, dst, bits in self.flows
        )

    @property
    def total_latency_ns(self) -> float:
        """Serialized worst case: every flow in sequence (upper bound)."""
        return sum(
            self.spec.transfer_latency_ns(bits, src, dst)
            for _, src, dst, bits in self.flows
        )

    def link_loads(self) -> Dict[Tuple[int, int], float]:
        """Bits crossing each mesh link, for hotspot analysis."""
        loads: Dict[Tuple[int, int], float] = {}
        for _, src, dst, bits in self.flows:
            path = self.spec.route(src, dst)
            for a, b in zip(path, path[1:]):
                key = (min(a, b), max(a, b))
                loads[key] = loads.get(key, 0.0) + bits
        return loads

    @property
    def max_link_load_bits(self) -> float:
        loads = self.link_loads()
        return max(loads.values()) if loads else 0.0


def map_layers_to_tiles(
    profile: ModelProfile,
    spec: Optional[MeshNocSpec] = None,
    activation_bits: int = 8,
) -> NocTrafficReport:
    """Place weight layers on mesh tiles and collect inter-layer flows.

    Layers are placed in execution order along a serpentine scan of the
    mesh (the natural floorplan for a feed-forward chain: consecutive
    layers are physically adjacent, so most flows are one hop).  Each
    layer's output feature map travels from its tile to the next
    layer's tile.
    """
    spec = spec if spec is not None else MeshNocSpec()
    layers = profile.weight_layers()
    if not layers:
        raise ValueError("model has no weight layers to place")

    def serpentine(index: int) -> int:
        tile = index % spec.n_tiles
        row, col = divmod(tile, spec.cols)
        if row % 2 == 1:
            col = spec.cols - 1 - col
        return row * spec.cols + col

    report = NocTrafficReport(spec=spec)
    for current, nxt in zip(layers, layers[1:]):
        bits = current.output_activations * activation_bits
        src = serpentine(layers.index(current))
        dst = serpentine(layers.index(nxt))
        report.flows.append((current.name, src, dst, float(bits)))
    return report


def noc_share_of_compute(
    profile: ModelProfile,
    compute_energy_pj: float,
    spec: Optional[MeshNocSpec] = None,
    activation_bits: int = 8,
) -> float:
    """NoC transport energy as a fraction of CiM compute energy.

    The number that justifies Fig. 9's simplification: when this is a
    few percent, folding NoC transport into the buffer term is sound.
    """
    if compute_energy_pj <= 0:
        raise ValueError("compute energy must be positive")
    report = map_layers_to_tiles(profile, spec, activation_bits)
    return report.total_energy_pj / compute_energy_pj
