"""Weight-to-subarray packing optimization.

Section 4.3.2: "The weight mapping scheme is optimized in a way of
storing the weights of different layers to the same sub-array, so as to
achieve high ADC utilization and thus reduced latency."

A layer whose unrolled matrix is 27 x 16 occupies a fraction of a
128 x 32-word subarray: 27 of 128 word lines, 16 of 32 logical columns.
Mapped alone it wastes ~90% of the array *and* of the ADC conversions
spent on its passes.  This module reproduces the optimization as 2-D
shelf packing: tiles cut to the subarray geometry are co-located in
row bands ("shelves") of shared subarrays using first-fit-decreasing,
and the result reports array utilization and the latency model's pass
count next to the naive one-tile-per-subarray mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cim.macro import MacroConfig
from repro.models.profile import ModelProfile


@dataclass(frozen=True)
class WeightTile:
    """One subarray-sized (or smaller) piece of a layer's weight matrix."""

    layer_name: str
    rows: int
    cols: int  # logical (multi-bit word) columns

    @property
    def words(self) -> int:
        return self.rows * self.cols


@dataclass
class Shelf:
    """A horizontal row band of a subarray holding tiles side by side."""

    row_start: int
    height: int
    used_cols: int = 0
    tiles: List[WeightTile] = field(default_factory=list)


@dataclass
class SubarrayAssignment:
    """Tiles co-located in one physical subarray, organised in shelves."""

    shelves: List[Shelf] = field(default_factory=list)

    @property
    def tiles(self) -> List[WeightTile]:
        return [tile for shelf in self.shelves for tile in shelf.tiles]

    def used_rows(self) -> int:
        return sum(shelf.height for shelf in self.shelves)

    def used_words(self) -> int:
        return sum(tile.words for tile in self.tiles)

    def passes(self, cols_per_pass: int) -> int:
        """Serial macro passes to read every stored word once.

        Each shelf activates its own row band; its columns stream
        through the shared ADC bank ``cols_per_pass`` at a time.
        """
        return sum(
            math.ceil(shelf.used_cols / cols_per_pass) for shelf in self.shelves
        )


@dataclass
class PackingResult:
    """Outcome of mapping a model's weight layers onto subarrays."""

    assignments: List[SubarrayAssignment]
    config: MacroConfig
    total_words: int

    @property
    def n_subarrays(self) -> int:
        return len(self.assignments)

    @property
    def array_utilization(self) -> float:
        """Stored words / capacity of all allocated subarrays."""
        capacity = self.n_subarrays * self.config.rows * self.config.logical_columns
        return self.total_words / capacity if capacity else 0.0

    @property
    def total_passes(self) -> int:
        cols_per_pass = max(1, self.config.n_adcs // self.config.weight_bits)
        return sum(a.passes(cols_per_pass) for a in self.assignments)

    @property
    def adc_utilization(self) -> float:
        """Useful MAC results / ADC conversion capacity spent.

        Every pass burns ``cols_per_pass`` column conversions over the
        full 128-row dynamic range whether or not the rows/columns carry
        weights; co-locating tiles raises the useful fraction.
        """
        cols_per_pass = max(1, self.config.n_adcs // self.config.weight_bits)
        capacity = self.total_passes * cols_per_pass * self.config.rows
        return self.total_words / capacity if capacity else 0.0


def _cut_tiles(profile: ModelProfile, config: MacroConfig) -> List[WeightTile]:
    """Cut every weight layer into subarray-geometry tiles."""
    tiles: List[WeightTile] = []
    for layer in profile.weight_layers():
        rows, cols = layer.matrix_shape
        for r0 in range(0, rows, config.rows):
            tile_rows = min(config.rows, rows - r0)
            for c0 in range(0, cols, config.logical_columns):
                tile_cols = min(config.logical_columns, cols - c0)
                tiles.append(WeightTile(layer.name, tile_rows, tile_cols))
    return tiles


def pack_naive(
    profile: ModelProfile, config: Optional[MacroConfig] = None
) -> PackingResult:
    """One-tile-per-subarray baseline mapping."""
    config = config if config is not None else MacroConfig()
    tiles = _cut_tiles(profile, config)
    assignments = [
        SubarrayAssignment(
            shelves=[Shelf(0, tile.rows, used_cols=tile.cols, tiles=[tile])]
        )
        for tile in tiles
    ]
    return PackingResult(
        assignments=assignments,
        config=config,
        total_words=sum(tile.words for tile in tiles),
    )


def pack_first_fit(
    profile: ModelProfile, config: Optional[MacroConfig] = None
) -> PackingResult:
    """First-fit-decreasing 2-D shelf packing across layers.

    Tiles are sorted by height (rows, descending): each is placed on
    the first shelf with enough free columns and height; failing that a
    new shelf opens in the first subarray with enough free rows;
    failing that a new subarray opens.  Different layers therefore
    share subarrays both side-by-side (columns) and stacked (rows) —
    the paper's "weights of different layers to the same sub-array".
    """
    config = config if config is not None else MacroConfig()
    tiles = sorted(_cut_tiles(profile, config), key=lambda t: (-t.rows, -t.cols))
    assignments: List[SubarrayAssignment] = []
    max_cols = config.logical_columns
    max_rows = config.rows

    for tile in tiles:
        placed = False
        for assignment in assignments:
            for shelf in assignment.shelves:
                if tile.rows <= shelf.height and tile.cols <= max_cols - shelf.used_cols:
                    shelf.tiles.append(tile)
                    shelf.used_cols += tile.cols
                    placed = True
                    break
            if placed:
                break
            if tile.rows <= max_rows - assignment.used_rows():
                shelf = Shelf(
                    row_start=assignment.used_rows(),
                    height=tile.rows,
                    used_cols=tile.cols,
                    tiles=[tile],
                )
                assignment.shelves.append(shelf)
                placed = True
                break
        if not placed:
            assignments.append(
                SubarrayAssignment(
                    shelves=[Shelf(0, tile.rows, used_cols=tile.cols, tiles=[tile])]
                )
            )
    return PackingResult(
        assignments=assignments,
        config=config,
        total_words=sum(tile.words for tile in tiles),
    )


def packing_latency_passes(result: PackingResult) -> int:
    """Total serial macro passes of a mapping (lower = lower latency)."""
    return result.total_passes


def compare_packings(
    profile: ModelProfile, config: Optional[MacroConfig] = None
) -> dict:
    """Naive vs optimized packing: the section 4.3.2 ablation."""
    config = config if config is not None else MacroConfig()
    naive = pack_naive(profile, config)
    packed = pack_first_fit(profile, config)
    return {
        "naive_subarrays": naive.n_subarrays,
        "packed_subarrays": packed.n_subarrays,
        "subarray_saving": naive.n_subarrays / packed.n_subarrays,
        "naive_array_utilization": naive.array_utilization,
        "packed_array_utilization": packed.array_utilization,
        "naive_passes": naive.total_passes,
        "packed_passes": packed.total_passes,
    }
