"""CACTI-style buffer and DRAM models.

The paper obtains SRAM-buffer and DRAM read/write energy and latency
from CACTI [24].  CACTI itself is a large C++ tool; this module embeds
the standard analytic scaling laws with 28nm-class constants of the
same magnitude, which is all the system comparison consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default on-chip activation cache: 12 Mb (1.5 MB).
CACHE_BITS_DEFAULT: int = 12 * 1024 * 1024


@dataclass(frozen=True)
class SramBufferModel:
    """On-chip SRAM cache/buffer (non-CiM, Fig. 9 "Cache").

    Energy per bit follows the CACTI wire-dominated scaling
    ``e = e0 * (capacity / 1Mb) ** wire_exponent``; area uses the 6T cell
    with a fixed array efficiency.
    """

    capacity_bits: int = CACHE_BITS_DEFAULT
    #: Read/write energy per bit at 1 Mb capacity (pJ/bit), 28nm-class.
    e0_pj_per_bit: float = 0.15
    wire_exponent: float = 0.25
    cell_area_um2: float = 0.014 * 16.0  # compact 6T
    array_efficiency: float = 0.7

    def __post_init__(self):
        if self.capacity_bits <= 0:
            raise ValueError("cache capacity must be positive")

    @property
    def energy_pj_per_bit(self) -> float:
        scale = (self.capacity_bits / 1e6) ** self.wire_exponent
        return self.e0_pj_per_bit * scale

    @property
    def area_mm2(self) -> float:
        return self.capacity_bits * self.cell_area_um2 * 1e-6 / self.array_efficiency

    def access_energy_pj(self, bits: float) -> float:
        """Energy to move ``bits`` through the buffer once."""
        return bits * self.energy_pj_per_bit


@dataclass(frozen=True)
class DramSpec:
    """Off-chip DRAM interface (CACTI-IO-class numbers).

    ``energy_pj_per_bit`` covers device + channel + PHY; the calibrated
    default reproduces the relative weight-reload overheads of Fig. 14
    (the sensitivity sweep lives in benchmarks/test_bench_pipeline.py).
    """

    energy_pj_per_bit: float = 10.0
    bandwidth_gbps: float = 204.8  # 25.6 GB/s LPDDR4-class channel
    #: Idle/refresh power drawn while the interface stays enabled (mW).
    static_power_mw: float = 50.0

    def access_energy_pj(self, bits: float) -> float:
        return bits * self.energy_pj_per_bit

    def transfer_time_ns(self, bits: float) -> float:
        return bits / self.bandwidth_gbps
