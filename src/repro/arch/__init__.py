"""System-level architecture simulation (Figs. 12-14).

Combines the macro-level envelopes from ``repro.cim`` with CACTI-style
buffer/DRAM models and a SIMBA-style chiplet link to evaluate the three
system configurations of Fig. 13:

* :class:`YolocSystem` — ROM-CiM backbone + SRAM-CiM ReBranch/prediction,
  all weights on chip (DRAM touched only at power-on).
* :class:`SramSingleChipSystem` — iso-area all-SRAM-CiM chip that must
  stream non-resident weights from DRAM every inference.
* :class:`SramChipletSystem` — enough SRAM-CiM chiplets to hold all
  weights, paying inter-chiplet transfer energy for intermediate data.

Each returns a :class:`SystemReport` with the area/energy/latency
breakdowns the paper plots.
"""

from repro.arch.memory import SramBufferModel, DramSpec, CACHE_BITS_DEFAULT
from repro.arch.chiplet import ChipletLinkSpec, SIMBA_LINK
from repro.arch.mapping import WeightMapping, map_model
from repro.arch.packing import (
    WeightTile,
    SubarrayAssignment,
    PackingResult,
    pack_naive,
    pack_first_fit,
    packing_latency_passes,
    compare_packings,
)
from repro.arch.technology import (
    ProcessNode,
    PROCESS_NODES,
    node_table,
    get_node,
    nodes_beaten_by_rom28,
    cost_of_density,
    scaling_curve,
    standby_energy_j,
    duty_cycle_energy_ratio,
)
from repro.arch.noc import (
    MeshNocSpec,
    NocTrafficReport,
    map_layers_to_tiles,
    noc_share_of_compute,
)
from repro.arch.pipeline import (
    LayerTask,
    Schedule,
    ScheduleEntry,
    serial_schedule,
    double_buffered_schedule,
    tasks_for_single_chip,
    tasks_for_compiled,
    relief_summary,
)
from repro.arch.training import (
    TrainingCostModel,
    TrainingStepCost,
    OPTIMIZER_STATE_WORDS,
)
from repro.arch.romchiplet import (
    RomChipletSystem,
    ChipletScalingPoint,
    ChipletScalingResult,
    chiplet_scaling,
    partition_summary,
    reticle_escape_area_mm2,
    RETICLE_LIMIT_MM2,
)
from repro.arch.system import (
    SystemReport,
    EnergyBreakdown,
    AreaBreakdown,
    BaseSystem,
    YolocSystem,
    SramSingleChipSystem,
    SramChipletSystem,
    evaluate_all_systems,
    evaluate_compiled,
)

__all__ = [
    "SramBufferModel",
    "DramSpec",
    "CACHE_BITS_DEFAULT",
    "ChipletLinkSpec",
    "SIMBA_LINK",
    "WeightMapping",
    "map_model",
    "WeightTile",
    "SubarrayAssignment",
    "PackingResult",
    "pack_naive",
    "pack_first_fit",
    "packing_latency_passes",
    "compare_packings",
    "ProcessNode",
    "PROCESS_NODES",
    "node_table",
    "get_node",
    "nodes_beaten_by_rom28",
    "cost_of_density",
    "scaling_curve",
    "standby_energy_j",
    "duty_cycle_energy_ratio",
    "SystemReport",
    "EnergyBreakdown",
    "AreaBreakdown",
    "BaseSystem",
    "YolocSystem",
    "SramSingleChipSystem",
    "SramChipletSystem",
    "evaluate_all_systems",
    "evaluate_compiled",
    "MeshNocSpec",
    "NocTrafficReport",
    "map_layers_to_tiles",
    "noc_share_of_compute",
    "TrainingCostModel",
    "TrainingStepCost",
    "OPTIMIZER_STATE_WORDS",
    "LayerTask",
    "Schedule",
    "ScheduleEntry",
    "serial_schedule",
    "double_buffered_schedule",
    "tasks_for_single_chip",
    "tasks_for_compiled",
    "relief_summary",
    "RomChipletSystem",
    "ChipletScalingPoint",
    "ChipletScalingResult",
    "chiplet_scaling",
    "partition_summary",
    "reticle_escape_area_mm2",
    "RETICLE_LIMIT_MM2",
]
