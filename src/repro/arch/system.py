"""The three system configurations of Fig. 13 and their evaluation.

Every system consumes a full-size :class:`~repro.models.profile.ModelProfile`
and produces a :class:`SystemReport` with the quantities the paper
plots: chip area and its breakdown (Figs. 12, 14b), per-inference energy
and its breakdown (Fig. 14c), latency, and energy efficiency (Fig. 14a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.chiplet import SIMBA_LINK, ChipletLinkSpec
from repro.arch.mapping import (
    WeightMapping,
    activation_traffic_bits,
    map_model,
    weight_reload_factor,
)
from repro.arch.memory import DramSpec, SramBufferModel
from repro.cim.spec import MacroSpec, rom_macro_spec, sram_macro_spec
from repro.models.profile import ModelProfile

#: Macro area decomposition used for the Fig. 14(b)-style breakdown.
#: ROM macros have no write path; SRAM-CiM macros spend ~25% on the
#: read/write interface (the paper: "ROM-CiM is more compact than
#: SRAM-CiM with a simplified R/W interface").
ROM_MACRO_AREA_SPLIT = {"array": 0.50, "adc": 0.30, "ctrl": 0.20, "rw": 0.0}
SRAM_MACRO_AREA_SPLIT = {"array": 0.35, "adc": 0.25, "ctrl": 0.15, "rw": 0.25}

#: Share of macro compute energy on the analog CiM path (word lines,
#: bit lines, ADC) vs digital peripherals (control, shift-and-add);
#: derived from the Table I calibration in ``repro.cim.spec``.
CIM_ENERGY_FRACTION = 0.64

#: Energy to write one bit into an SRAM-CiM array during weight reload.
SRAM_CIM_WRITE_PJ_PER_BIT = 0.05

#: Power-on weight loads amortized across this many inferences.
INFERENCES_PER_BOOT = 10_000


@dataclass
class EnergyBreakdown:
    """Per-inference energy, picojoules."""

    cim_pj: float = 0.0
    peripheral_pj: float = 0.0
    buffer_pj: float = 0.0
    dram_pj: float = 0.0
    interconnect_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.cim_pj
            + self.peripheral_pj
            + self.buffer_pj
            + self.dram_pj
            + self.interconnect_pj
        )

    def fractions(self) -> Dict[str, float]:
        total = self.total_pj
        if total <= 0:
            return {}
        return {
            "cim": self.cim_pj / total,
            "peripheral": (self.peripheral_pj + self.buffer_pj) / total,
            "dram": self.dram_pj / total,
            "interconnect": self.interconnect_pj / total,
        }


@dataclass
class AreaBreakdown:
    """Chip area, mm^2, in both of the paper's groupings."""

    # Fig. 14(b) categories
    array_mm2: float = 0.0
    adc_mm2: float = 0.0
    rw_mm2: float = 0.0
    buffer_mm2: float = 0.0
    ctrl_mm2: float = 0.0
    # Fig. 12 categories
    rom_cim_mm2: float = 0.0
    sram_cim_mm2: float = 0.0

    @property
    def total_mm2(self) -> float:
        return (
            self.array_mm2
            + self.adc_mm2
            + self.rw_mm2
            + self.buffer_mm2
            + self.ctrl_mm2
        )

    @property
    def total_cm2(self) -> float:
        return self.total_mm2 / 100.0

    def fractions(self) -> Dict[str, float]:
        total = self.total_mm2
        if total <= 0:
            return {}
        return {
            "array": self.array_mm2 / total,
            "adc": self.adc_mm2 / total,
            "rw": self.rw_mm2 / total,
            "buffer": self.buffer_mm2 / total,
            "peripheral": self.ctrl_mm2 / total,
        }


@dataclass
class SystemReport:
    """Evaluation result of one (system, model) pair."""

    system: str
    area: AreaBreakdown
    energy: EnergyBreakdown
    latency_ns: float
    macs: int
    n_chips: int = 1
    dram_traffic_bits: int = 0
    interconnect_traffic_bits: int = 0
    fits_on_chip: bool = True
    mapping: Optional[WeightMapping] = None

    @property
    def energy_per_inference_uj(self) -> float:
        return self.energy.total_pj / 1e6

    @property
    def tops_per_w(self) -> float:
        """Ops per picojoule == TOPS/W (1 op = one 8b MAC)."""
        return self.macs / self.energy.total_pj if self.energy.total_pj else 0.0

    @property
    def throughput_gops(self) -> float:
        return self.macs / self.latency_ns if self.latency_ns else 0.0


def _macro_area_breakdown(
    n_macros: int, spec: MacroSpec, split: Dict[str, float]
) -> Dict[str, float]:
    area = n_macros * spec.area_mm2
    return {key: area * fraction for key, fraction in split.items()}


class BaseSystem:
    """Shared plumbing for the three Fig. 13 configurations."""

    name = "base"

    def __init__(
        self,
        rom_spec: Optional[MacroSpec] = None,
        sram_spec: Optional[MacroSpec] = None,
        cache: Optional[SramBufferModel] = None,
        dram: Optional[DramSpec] = None,
        link: ChipletLinkSpec = SIMBA_LINK,
        activation_bits: int = 8,
        weight_bits: int = 8,
    ):
        self.rom_spec = rom_spec if rom_spec is not None else rom_macro_spec()
        self.sram_spec = sram_spec if sram_spec is not None else sram_macro_spec()
        self.cache = cache if cache is not None else SramBufferModel()
        self.dram = dram if dram is not None else DramSpec()
        self.link = link
        self.activation_bits = activation_bits
        self.weight_bits = weight_bits

    # -- shared cost helpers ----------------------------------------------
    def _compute_energy_pj(self, rom_macs: int, sram_macs: int) -> Dict[str, float]:
        rom_e = rom_macs * self.rom_spec.energy_per_op_fj / 1000.0
        sram_e = sram_macs * self.sram_spec.energy_per_op_fj / 1000.0
        total = rom_e + sram_e
        return {
            "cim": total * CIM_ENERGY_FRACTION,
            "peripheral": total * (1.0 - CIM_ENERGY_FRACTION),
        }

    def _buffer_energy_pj(self, profile: ModelProfile) -> float:
        traffic = activation_traffic_bits(profile, self.activation_bits)
        # Each activation is written once and read once on average.
        return self.cache.access_energy_pj(2 * traffic)

    def evaluate(self, profile: ModelProfile) -> SystemReport:
        raise NotImplementedError


class YolocSystem(BaseSystem):
    """Fig. 13(a): ROM-CiM backbone + SRAM-CiM ReBranch and prediction."""

    name = "yoloc"

    def __init__(self, d: int = 4, u: int = 4, **kwargs):
        super().__init__(**kwargs)
        self.d = d
        self.u = u

    def mapping_for(self, profile: ModelProfile) -> WeightMapping:
        return map_model(
            profile, "yoloc", d=self.d, u=self.u, weight_bits=self.weight_bits
        )

    def macro_counts(self, mapping: WeightMapping) -> Dict[str, int]:
        return {
            "rom": max(1, math.ceil(mapping.rom_weight_bits / self.rom_spec.capacity_bits)),
            "sram": max(
                1, math.ceil(mapping.sram_weight_bits / self.sram_spec.capacity_bits)
            ),
        }

    def evaluate(self, profile: ModelProfile) -> SystemReport:
        mapping = self.mapping_for(profile)
        counts = self.macro_counts(mapping)

        rom_parts = _macro_area_breakdown(counts["rom"], self.rom_spec, ROM_MACRO_AREA_SPLIT)
        sram_parts = _macro_area_breakdown(
            counts["sram"], self.sram_spec, SRAM_MACRO_AREA_SPLIT
        )
        macro_area = counts["rom"] * self.rom_spec.area_mm2 + counts[
            "sram"
        ] * self.sram_spec.area_mm2
        ctrl_extra = 0.05 * (macro_area + self.cache.area_mm2)
        area = AreaBreakdown(
            array_mm2=rom_parts["array"] + sram_parts["array"],
            adc_mm2=rom_parts["adc"] + sram_parts["adc"],
            rw_mm2=rom_parts["rw"] + sram_parts["rw"],
            buffer_mm2=self.cache.area_mm2,
            ctrl_mm2=rom_parts["ctrl"] + sram_parts["ctrl"] + ctrl_extra,
            rom_cim_mm2=counts["rom"] * self.rom_spec.area_mm2,
            sram_cim_mm2=counts["sram"] * self.sram_spec.area_mm2,
        )

        compute = self._compute_energy_pj(mapping.rom_macs, mapping.sram_macs)
        boot_pj = (
            self.dram.access_energy_pj(mapping.sram_weight_bits) / INFERENCES_PER_BOOT
        )
        energy = EnergyBreakdown(
            cim_pj=compute["cim"],
            peripheral_pj=compute["peripheral"],
            buffer_pj=self._buffer_energy_pj(profile),
            dram_pj=boot_pj,
        )

        rom_gops = counts["rom"] * self.rom_spec.throughput_gops
        sram_gops = counts["sram"] * self.sram_spec.throughput_gops
        latency = max(mapping.rom_macs / rom_gops, mapping.sram_macs / sram_gops)
        return SystemReport(
            system=self.name,
            area=area,
            energy=energy,
            latency_ns=latency,
            macs=mapping.total_macs,
            mapping=mapping,
        )

    def latency_overhead(self, profile: ModelProfile) -> float:
        """Fractional latency cost of the residual branch (paper: <8%)."""
        report = self.evaluate(profile)
        trunk_bits = sum(
            p.layer.params * self.weight_bits for p in report.mapping.placements
        )
        trunk_macros = max(1, math.ceil(trunk_bits / self.rom_spec.capacity_bits))
        trunk_latency = profile.total_macs / (
            trunk_macros * self.rom_spec.throughput_gops
        )
        return report.latency_ns / trunk_latency - 1.0


class SramSingleChipSystem(BaseSystem):
    """Fig. 13(b): iso-area all-SRAM-CiM chip backed by DRAM."""

    name = "sram-single-chip"

    def __init__(self, chip_area_mm2: Optional[float] = None, **kwargs):
        super().__init__(**kwargs)
        self.chip_area_mm2 = chip_area_mm2

    def area_for_capacity(self, capacity_bits: int) -> float:
        """Chip area (mm^2) whose macro array holds ``capacity_bits``.

        Used by the Fig. 14 protocol: the shared chip is sized so the
        smallest benchmark (VGG-8) fits entirely on chip.
        """
        n_macros = math.ceil(capacity_bits / self.sram_spec.capacity_bits)
        macro_area = n_macros * self.sram_spec.area_mm2
        return (macro_area + self.cache.area_mm2) / 0.95

    def _resolve_chip_area(self, profile: ModelProfile) -> float:
        if self.chip_area_mm2 is not None:
            return self.chip_area_mm2
        # Iso-area with the YOLoC chip for the same model (the paper's
        # comparison protocol).
        yoloc = YolocSystem(
            rom_spec=self.rom_spec,
            sram_spec=self.sram_spec,
            cache=self.cache,
            dram=self.dram,
            link=self.link,
            activation_bits=self.activation_bits,
            weight_bits=self.weight_bits,
        )
        return yoloc.evaluate(profile).area.total_mm2

    def evaluate(self, profile: ModelProfile) -> SystemReport:
        chip_area = self._resolve_chip_area(profile)
        mapping = map_model(profile, "all_sram", weight_bits=self.weight_bits)

        ctrl_share = 0.05
        usable = chip_area * (1 - ctrl_share) - self.cache.area_mm2
        n_macros = max(1, int(usable // self.sram_spec.area_mm2))
        capacity_bits = n_macros * self.sram_spec.capacity_bits

        total_bits = mapping.total_weight_bits
        resident = min(total_bits, capacity_bits)
        missing = total_bits - resident
        reload_factor = weight_reload_factor(
            profile, self.cache.capacity_bits, self.activation_bits
        )
        traffic = missing * reload_factor
        fits = missing == 0

        sram_parts = _macro_area_breakdown(
            n_macros, self.sram_spec, SRAM_MACRO_AREA_SPLIT
        )
        area = AreaBreakdown(
            array_mm2=sram_parts["array"],
            adc_mm2=sram_parts["adc"],
            rw_mm2=sram_parts["rw"],
            buffer_mm2=self.cache.area_mm2,
            ctrl_mm2=sram_parts["ctrl"] + chip_area * ctrl_share,
            sram_cim_mm2=n_macros * self.sram_spec.area_mm2,
        )

        compute = self._compute_energy_pj(0, mapping.total_macs)
        dram_pj = self.dram.access_energy_pj(traffic) + traffic * SRAM_CIM_WRITE_PJ_PER_BIT
        energy = EnergyBreakdown(
            cim_pj=compute["cim"],
            peripheral_pj=compute["peripheral"],
            buffer_pj=self._buffer_energy_pj(profile),
            dram_pj=dram_pj,
        )

        compute_latency = mapping.total_macs / (
            n_macros * self.sram_spec.throughput_gops
        )
        dram_latency = self.dram.transfer_time_ns(traffic)
        return SystemReport(
            system=self.name,
            area=area,
            energy=energy,
            latency_ns=max(compute_latency, dram_latency),
            macs=mapping.total_macs,
            dram_traffic_bits=int(traffic),
            fits_on_chip=fits,
            mapping=mapping,
        )


class SramChipletSystem(BaseSystem):
    """Fig. 13(c): enough SRAM-CiM chiplets to hold every weight."""

    name = "sram-chiplet"

    def __init__(
        self,
        chiplet_area_mm2: Optional[float] = None,
        boundary_activation_fraction: float = 0.5,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.chiplet_area_mm2 = chiplet_area_mm2
        if not 0 <= boundary_activation_fraction <= 1:
            raise ValueError("boundary fraction must be in [0, 1]")
        self.boundary_activation_fraction = boundary_activation_fraction

    def evaluate(self, profile: ModelProfile) -> SystemReport:
        mapping = map_model(profile, "all_sram", weight_bits=self.weight_bits)

        if self.chiplet_area_mm2 is not None:
            chiplet_area = self.chiplet_area_mm2
        else:
            chiplet_area = SramSingleChipSystem(
                rom_spec=self.rom_spec,
                sram_spec=self.sram_spec,
                cache=self.cache,
                dram=self.dram,
                link=self.link,
            )._resolve_chip_area(profile)

        ctrl_share = 0.05
        usable = chiplet_area * (1 - ctrl_share) - self.cache.area_mm2
        macros_per_chip = max(1, int(usable // self.sram_spec.area_mm2))
        capacity_per_chip = macros_per_chip * self.sram_spec.capacity_bits
        n_chips = max(1, math.ceil(mapping.total_weight_bits / capacity_per_chip))

        sram_parts = _macro_area_breakdown(
            n_chips * macros_per_chip, self.sram_spec, SRAM_MACRO_AREA_SPLIT
        )
        area = AreaBreakdown(
            array_mm2=sram_parts["array"],
            adc_mm2=sram_parts["adc"],
            rw_mm2=sram_parts["rw"],
            buffer_mm2=n_chips * self.cache.area_mm2,
            ctrl_mm2=sram_parts["ctrl"] + n_chips * chiplet_area * ctrl_share,
            sram_cim_mm2=n_chips * macros_per_chip * self.sram_spec.area_mm2,
        )

        act_bits = activation_traffic_bits(profile, self.activation_bits)
        crossing = (
            act_bits * self.boundary_activation_fraction if n_chips > 1 else 0.0
        )
        compute = self._compute_energy_pj(0, mapping.total_macs)
        energy = EnergyBreakdown(
            cim_pj=compute["cim"],
            peripheral_pj=compute["peripheral"],
            buffer_pj=self._buffer_energy_pj(profile),
            interconnect_pj=self.link.transfer_energy_pj(crossing),
        )

        compute_latency = mapping.total_macs / (
            n_chips * macros_per_chip * self.sram_spec.throughput_gops
        )
        link_latency = self.link.transfer_time_ns(crossing)
        return SystemReport(
            system=self.name,
            area=area,
            energy=energy,
            latency_ns=compute_latency + link_latency,
            macs=mapping.total_macs,
            n_chips=n_chips,
            interconnect_traffic_bits=int(crossing),
            mapping=mapping,
        )


def evaluate_all_systems(
    profile: ModelProfile, **kwargs
) -> Dict[str, SystemReport]:
    """Run the three Fig. 13 configurations on one model profile."""
    return {
        "yoloc": YolocSystem(**kwargs).evaluate(profile),
        "sram-single-chip": SramSingleChipSystem(**kwargs).evaluate(profile),
        "sram-chiplet": SramChipletSystem(**kwargs).evaluate(profile),
    }


def evaluate_compiled(
    compiled, input_shape, **kwargs
) -> Dict[str, SystemReport]:
    """Run the Fig. 13 configurations on a compiled runtime model.

    ``compiled`` is a :class:`~repro.runtime.CompiledModel`; its cached
    analytic profile (the folded module tree walked symbolically for
    ``input_shape``) feeds the same area/latency/energy models as
    :func:`evaluate_all_systems`, so the deployment path and the system
    simulator consume one programmed artifact.
    """
    return evaluate_all_systems(compiled.profile(input_shape), **kwargs)
