"""ROM-CiM chiplets — the paper's named future work (section 4.3.3).

"Future works that thoroughly exploit the ROM-CiM design space and
cross-layer co-optimizations (including ROM-CiM chiplets) are
promising."  This module builds that system: the YOLoC organization
(ROM-CiM trunk + SRAM-CiM branch + cache per die) partitioned across as
many chiplets as a per-die area budget requires, connected by the same
SIMBA-class serial link the SRAM-CiM chiplet baseline uses.

The expected shape: because ROM-CiM is ~19x denser, a ROM chiplet
assembly needs roughly an order of magnitude fewer dies and total
silicon than the SRAM chiplet assembly for the same model, and it
lifts the single-chip YOLoC's reticle ceiling.  Per-inference energy
lands near parity: the ReBranch layers add ~15% extra MACs, which eats
the interconnect saving from cutting the network in fewer places — the
assembly's win is area and cost, not energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.system import (
    AreaBreakdown,
    BaseSystem,
    EnergyBreakdown,
    INFERENCES_PER_BOOT,
    ROM_MACRO_AREA_SPLIT,
    SRAM_MACRO_AREA_SPLIT,
    SramChipletSystem,
    SystemReport,
    YolocSystem,
    _macro_area_breakdown,
)
from repro.arch.mapping import activation_traffic_bits, map_model
from repro.models.profile import ModelProfile


class RomChipletSystem(BaseSystem):
    """YOLoC partitioned over multiple dies of at most ``die_area_mm2``.

    Each die carries its share of ROM-CiM trunk macros, the SRAM-CiM
    macros for the ReBranch layers mapped to it, and a local cache.
    Layer boundaries that land on die boundaries ship activations over
    the chiplet link; ``boundary_activation_fraction`` is the share of
    total activation traffic that crosses (same convention as the
    SRAM-CiM chiplet baseline, scaled by how many cut points the
    partition actually has).
    """

    name = "rom-chiplet"

    def __init__(
        self,
        die_area_mm2: float = 50.0,
        d: int = 4,
        u: int = 4,
        boundary_activation_fraction: float = 0.5,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if die_area_mm2 <= 0:
            raise ValueError(f"die area must be positive, got {die_area_mm2}")
        if not 0 <= boundary_activation_fraction <= 1:
            raise ValueError("boundary fraction must be in [0, 1]")
        self.die_area_mm2 = die_area_mm2
        self.d = d
        self.u = u
        self.boundary_activation_fraction = boundary_activation_fraction

    def _die_budget_mm2(self) -> float:
        """Macro area one die can host next to its cache and control."""
        ctrl_share = 0.05
        budget = self.die_area_mm2 * (1 - ctrl_share) - self.cache.area_mm2
        if budget <= 0:
            raise ValueError(
                f"a {self.die_area_mm2} mm^2 die cannot fit the "
                f"{self.cache.area_mm2:.1f} mm^2 cache"
            )
        return budget

    def n_chips_for(self, profile: ModelProfile) -> int:
        mapping = map_model(
            profile, "yoloc", d=self.d, u=self.u, weight_bits=self.weight_bits
        )
        rom_macros = max(
            1, math.ceil(mapping.rom_weight_bits / self.rom_spec.capacity_bits)
        )
        sram_macros = max(
            1, math.ceil(mapping.sram_weight_bits / self.sram_spec.capacity_bits)
        )
        macro_area = (
            rom_macros * self.rom_spec.area_mm2 + sram_macros * self.sram_spec.area_mm2
        )
        return max(1, math.ceil(macro_area / self._die_budget_mm2()))

    def evaluate(self, profile: ModelProfile) -> SystemReport:
        mapping = map_model(
            profile, "yoloc", d=self.d, u=self.u, weight_bits=self.weight_bits
        )
        rom_macros = max(
            1, math.ceil(mapping.rom_weight_bits / self.rom_spec.capacity_bits)
        )
        sram_macros = max(
            1, math.ceil(mapping.sram_weight_bits / self.sram_spec.capacity_bits)
        )
        n_chips = self.n_chips_for(profile)

        rom_parts = _macro_area_breakdown(
            rom_macros, self.rom_spec, ROM_MACRO_AREA_SPLIT
        )
        sram_parts = _macro_area_breakdown(
            sram_macros, self.sram_spec, SRAM_MACRO_AREA_SPLIT
        )
        macro_area = (
            rom_macros * self.rom_spec.area_mm2 + sram_macros * self.sram_spec.area_mm2
        )
        ctrl_extra = 0.05 * (macro_area + n_chips * self.cache.area_mm2)
        area = AreaBreakdown(
            array_mm2=rom_parts["array"] + sram_parts["array"],
            adc_mm2=rom_parts["adc"] + sram_parts["adc"],
            rw_mm2=rom_parts["rw"] + sram_parts["rw"],
            buffer_mm2=n_chips * self.cache.area_mm2,
            ctrl_mm2=rom_parts["ctrl"] + sram_parts["ctrl"] + ctrl_extra,
            rom_cim_mm2=rom_macros * self.rom_spec.area_mm2,
            sram_cim_mm2=sram_macros * self.sram_spec.area_mm2,
        )

        act_bits = activation_traffic_bits(profile, self.activation_bits)
        # With k dies the network is cut k-1 times; normalize against the
        # SRAM-chiplet convention (flat fraction once more than one die).
        cut_scale = (n_chips - 1) / n_chips if n_chips > 1 else 0.0
        crossing = act_bits * self.boundary_activation_fraction * cut_scale

        compute = self._compute_energy_pj(mapping.rom_macs, mapping.sram_macs)
        boot_pj = (
            self.dram.access_energy_pj(mapping.sram_weight_bits) / INFERENCES_PER_BOOT
        )
        energy = EnergyBreakdown(
            cim_pj=compute["cim"],
            peripheral_pj=compute["peripheral"],
            buffer_pj=self._buffer_energy_pj(profile),
            dram_pj=boot_pj,
            interconnect_pj=self.link.transfer_energy_pj(crossing),
        )

        rom_gops = rom_macros * self.rom_spec.throughput_gops
        sram_gops = sram_macros * self.sram_spec.throughput_gops
        compute_latency = max(
            mapping.rom_macs / rom_gops, mapping.sram_macs / sram_gops
        )
        link_latency = self.link.transfer_time_ns(crossing)
        return SystemReport(
            system=self.name,
            area=area,
            energy=energy,
            latency_ns=compute_latency + link_latency,
            macs=mapping.total_macs,
            n_chips=n_chips,
            interconnect_traffic_bits=int(crossing),
            mapping=mapping,
        )


@dataclass
class ChipletScalingPoint:
    """ROM vs SRAM chiplet assemblies at one die-area budget."""

    die_area_mm2: float
    rom_chips: int
    sram_chips: int
    rom_energy_uj: float
    sram_energy_uj: float
    rom_area_cm2: float
    sram_area_cm2: float

    @property
    def chip_count_ratio(self) -> float:
        return self.sram_chips / self.rom_chips

    @property
    def energy_ratio(self) -> float:
        return self.sram_energy_uj / self.rom_energy_uj


@dataclass
class ChipletScalingResult:
    model: str
    points: List[ChipletScalingPoint] = field(default_factory=list)


def chiplet_scaling(
    profile: ModelProfile,
    die_areas_mm2: Sequence[float] = (25.0, 50.0, 100.0),
    model_name: str = "model",
    **kwargs,
) -> ChipletScalingResult:
    """Sweep the die-area budget for ROM vs SRAM chiplet assemblies."""
    result = ChipletScalingResult(model=model_name)
    for die_area in die_areas_mm2:
        rom = RomChipletSystem(die_area_mm2=die_area, **kwargs).evaluate(profile)
        sram = SramChipletSystem(chiplet_area_mm2=die_area, **kwargs).evaluate(profile)
        result.points.append(
            ChipletScalingPoint(
                die_area_mm2=die_area,
                rom_chips=rom.n_chips,
                sram_chips=sram.n_chips,
                rom_energy_uj=rom.energy_per_inference_uj,
                sram_energy_uj=sram.energy_per_inference_uj,
                rom_area_cm2=rom.area.total_cm2,
                sram_area_cm2=sram.area.total_cm2,
            )
        )
    return result


def reticle_escape_area_mm2(
    profile: ModelProfile, d: int = 4, u: int = 4, **kwargs
) -> float:
    """Single-die YOLoC area for the model — what chiplets must beat.

    When this exceeds the reticle limit (~858 mm^2 at 26x33 mm), a
    monolithic YOLoC cannot be manufactured and the ROM-chiplet
    assembly is the only DRAM-free deployment left.
    """
    report = YolocSystem(d=d, u=u, **kwargs).evaluate(profile)
    return report.area.total_mm2


#: Standard full-field reticle, 26 mm x 33 mm.
RETICLE_LIMIT_MM2 = 858.0


def partition_summary(
    profile: ModelProfile, die_area_mm2: float = 50.0, **kwargs
) -> Dict[str, float]:
    """One-line comparison used by the example script and the bench."""
    rom = RomChipletSystem(die_area_mm2=die_area_mm2, **kwargs).evaluate(profile)
    sram = SramChipletSystem(chiplet_area_mm2=die_area_mm2, **kwargs).evaluate(profile)
    monolithic = reticle_escape_area_mm2(profile, **kwargs)
    return {
        "die_area_mm2": die_area_mm2,
        "rom_chips": rom.n_chips,
        "sram_chips": sram.n_chips,
        "chip_count_ratio": sram.n_chips / rom.n_chips,
        "energy_ratio": sram.energy.total_pj / rom.energy.total_pj,
        "area_ratio": sram.area.total_mm2 / rom.area.total_mm2,
        "monolithic_area_mm2": monolithic,
        "needs_chiplets": float(monolithic > RETICLE_LIMIT_MM2),
    }


def evaluate_four_systems(
    profile: ModelProfile, die_area_mm2: float = 50.0, **kwargs
) -> Dict[str, SystemReport]:
    """The Fig. 13 trio plus the ROM-chiplet assembly, on one profile.

    Extends :func:`repro.arch.system.evaluate_all_systems` with the
    section 4.3.3 future-work configuration so all four deployments can
    be compared in one call.
    """
    from repro.arch.system import evaluate_all_systems

    reports = evaluate_all_systems(profile, **kwargs)
    reports["rom-chiplet"] = RomChipletSystem(
        die_area_mm2=die_area_mm2, **kwargs
    ).evaluate(profile)
    return reports
