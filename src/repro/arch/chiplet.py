"""Chiplet interconnect model (Fig. 13c).

The SRAM-CiM chiplet baseline spreads the model over enough chips to
hold every weight; intermediate feature maps then cross chip boundaries
over a ground-referenced serial link.  Link parameters follow SIMBA
[25]: 1.17 pJ/bit at 25 Gb/s/pin.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipletLinkSpec:
    """Inter-chiplet serial link."""

    energy_pj_per_bit: float = 1.17
    bandwidth_gbps_per_pin: float = 25.0
    pins_per_link: int = 32

    @property
    def link_bandwidth_gbps(self) -> float:
        return self.bandwidth_gbps_per_pin * self.pins_per_link

    def transfer_energy_pj(self, bits: float) -> float:
        return bits * self.energy_pj_per_bit

    def transfer_time_ns(self, bits: float) -> float:
        return bits / self.link_bandwidth_gbps


#: The link of Poulton et al. (JSSC'19), as used by SIMBA and the paper.
SIMBA_LINK = ChipletLinkSpec()
