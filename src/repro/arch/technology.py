"""Technology-scaling model (Fig. 1a) and standby-power analysis.

Fig. 1(a) motivates the whole paper: shrinking the process node raises
SRAM density but tape-out cost soars, so "buy density with a newer
node" stops being economical — while a 28nm ROM-CiM cell is already
denser than SRAM at 5-7nm.  This module embeds the industry-standard
scaling curves behind that figure so the cross-over can be computed
rather than eyeballed.

It also quantifies the paper's standby-power claim: ROM is non-volatile
(zero retention power), SRAM arrays leak continuously, so at low duty
cycles the energy gap widens far beyond the per-inference numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cim.cells import ROM_1T
from repro.cim.spec import MacroSpec, rom_macro_spec, sram_macro_spec


@dataclass(frozen=True)
class ProcessNode:
    """One CMOS process generation.

    ``sram_density_mb_mm2`` is high-density 6T macro density;
    ``tapeout_cost_musd`` the typical full-mask-set design+NRE cost in
    millions of USD (the exploding curve of Fig. 1a).
    """

    node_nm: int
    sram_density_mb_mm2: float
    tapeout_cost_musd: float

    @property
    def sram_cell_area_um2(self) -> float:
        return 1.0 / self.sram_density_mb_mm2


#: Published-magnitude numbers for the nodes on Fig. 1(a)'s x-axis.
PROCESS_NODES: Tuple[ProcessNode, ...] = (
    ProcessNode(130, 0.35, 1.5),
    ProcessNode(90, 0.65, 2.5),
    ProcessNode(65, 1.1, 4.0),
    ProcessNode(45, 1.9, 8.0),
    ProcessNode(40, 2.2, 10.0),
    ProcessNode(28, 3.1, 15.0),
    ProcessNode(20, 4.4, 30.0),
    ProcessNode(16, 6.4, 70.0),
    ProcessNode(10, 10.5, 170.0),
    ProcessNode(7, 17.0, 300.0),
    ProcessNode(5, 25.0, 540.0),
)


def node_table() -> List[ProcessNode]:
    """All modelled process nodes, newest last."""
    return sorted(PROCESS_NODES, key=lambda n: -n.node_nm)


def get_node(node_nm: int) -> ProcessNode:
    for node in PROCESS_NODES:
        if node.node_nm == node_nm:
            return node
    raise KeyError(f"no model for {node_nm} nm; available: "
                   f"{sorted(n.node_nm for n in PROCESS_NODES)}")


def rom28_density_mb_mm2() -> float:
    """Raw cell density of the proposed 28nm ROM (bits only)."""
    return ROM_1T.density_mb_per_mm2


def nodes_beaten_by_rom28(include_macro_overhead: bool = False) -> List[int]:
    """Process nodes whose SRAM density the 28nm ROM cell already beats.

    The paper: the ROM cell "is even denser than the commercial SRAM at
    the 5-7nm node".  With ``include_macro_overhead`` the comparison is
    at the macro level (peripheral-laden 5 Mb/mm^2) instead.
    """
    rom = (
        rom_macro_spec().density_mb_mm2
        if include_macro_overhead
        else rom28_density_mb_mm2()
    )
    return sorted(
        node.node_nm for node in PROCESS_NODES if rom > node.sram_density_mb_mm2
    )


def cost_of_density(target_mb_mm2: float) -> Optional[ProcessNode]:
    """Cheapest node whose SRAM reaches ``target_mb_mm2`` (None if none)."""
    candidates = [
        node for node in PROCESS_NODES if node.sram_density_mb_mm2 >= target_mb_mm2
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda node: node.tapeout_cost_musd)


def scaling_curve() -> Dict[int, Tuple[float, float]]:
    """node -> (normalized density, normalized tape-out cost), 130nm = 1."""
    base = get_node(130)
    return {
        node.node_nm: (
            node.sram_density_mb_mm2 / base.sram_density_mb_mm2,
            node.tapeout_cost_musd / base.tapeout_cost_musd,
        )
        for node in node_table()
    }


# ----------------------------------------------------------------------
# Standby power (the non-volatility claim)
# ----------------------------------------------------------------------
def standby_energy_j(
    spec: MacroSpec, idle_seconds: float, n_macros: int = 1
) -> float:
    """Retention energy burned while the array holds weights but idles."""
    if idle_seconds < 0:
        raise ValueError("idle time cannot be negative")
    return spec.standby_power_w * idle_seconds * n_macros


def duty_cycle_energy_ratio(
    active_energy_j: float,
    inference_rate_hz: float,
    weight_bits: int,
    duty_cycle: float = 1.0,
) -> Dict[str, float]:
    """Energy per wall-clock second of a ROM vs SRAM deployment.

    ``active_energy_j`` is the per-inference compute energy (equal for
    both, same peripherals); the SRAM deployment additionally leaks over
    its whole array whenever powered.  Returns per-second energy for
    both and the ROM advantage — which diverges as ``duty_cycle`` drops
    (the always-on edge-camera regime the paper targets).
    """
    if not 0 < duty_cycle <= 1:
        raise ValueError("duty cycle must be in (0, 1]")
    if inference_rate_hz < 0:
        raise ValueError("inference rate cannot be negative")
    rom = rom_macro_spec()
    sram = sram_macro_spec()
    n_rom = max(1, weight_bits // rom.capacity_bits)
    n_sram = max(1, weight_bits // sram.capacity_bits)

    compute_per_s = active_energy_j * inference_rate_hz * duty_cycle
    rom_total = compute_per_s + rom.standby_power_w * n_rom
    sram_total = compute_per_s + sram.standby_power_w * n_sram
    return {
        "rom_j_per_s": rom_total,
        "sram_j_per_s": sram_total,
        "rom_advantage": sram_total / rom_total if rom_total > 0 else float("inf"),
    }
