"""Weight placement: which parameters live in ROM-CiM vs SRAM-CiM.

Implements the YOLoC policy of Fig. 9: the backbone trunk plus the
frozen residual-(de)compression point-wise layers go to ROM-CiM; the
trainable res-conv branches and the prediction head go to SRAM-CiM.
Also derives the per-inference MAC split and the DRAM weight-reload
factor used by the system energy model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.models.profile import LayerProfile, ModelProfile


@dataclass
class LayerPlacement:
    """Placement decision for one weight layer."""

    layer: LayerProfile
    #: Weight bits in ROM-CiM (trunk + compress/decompress).
    rom_bits: int
    #: Weight bits in SRAM-CiM (res-conv or fully-trainable layer).
    sram_bits: int
    #: MACs executed on ROM arrays per inference.
    rom_macs: int
    #: MACs executed on SRAM arrays per inference.
    sram_macs: int
    has_branch: bool


@dataclass
class WeightMapping:
    """Aggregate mapping of a model onto a YOLoC-style chip."""

    placements: List[LayerPlacement] = field(default_factory=list)
    weight_bits: int = 8
    activation_bits: int = 8

    @property
    def rom_weight_bits(self) -> int:
        return sum(p.rom_bits for p in self.placements)

    @property
    def sram_weight_bits(self) -> int:
        return sum(p.sram_bits for p in self.placements)

    @property
    def total_weight_bits(self) -> int:
        return self.rom_weight_bits + self.sram_weight_bits

    @property
    def rom_macs(self) -> int:
        return sum(p.rom_macs for p in self.placements)

    @property
    def sram_macs(self) -> int:
        return sum(p.sram_macs for p in self.placements)

    @property
    def total_macs(self) -> int:
        return self.rom_macs + self.sram_macs

    @property
    def trainable_fraction(self) -> float:
        """Fraction of weight bits that remain updatable (SRAM-resident)."""
        total = self.total_weight_bits
        return self.sram_weight_bits / total if total else 0.0


def _branch_costs(
    layer: LayerProfile, d: int, u: int
) -> Tuple[int, int, int, int]:
    """ReBranch costs for one trunk conv (Fig. 7).

    Returns ``(rom_extra_params, sram_params, rom_extra_macs, sram_macs)``
    where the ROM extras are the point-wise compress (N -> N/D) and
    decompress (M/U -> M) layers and the SRAM part is the res-conv
    (N/D -> M/U with the trunk's kernel).
    """
    rows, cols = layer.matrix_shape  # (Cin*kh*kw, Cout)
    out_positions = layer.out_shape[2] * layer.out_shape[3]
    in_c = layer.in_shape[1]
    out_c = cols
    kernel_sq = rows // in_c  # kh*kw

    c_over_d = max(1, in_c // d)
    m_over_u = max(1, out_c // u)
    in_positions = layer.in_shape[2] * layer.in_shape[3]

    compress_params = in_c * c_over_d
    decompress_params = m_over_u * out_c
    resconv_params = c_over_d * m_over_u * kernel_sq

    compress_macs = in_positions * compress_params
    decompress_macs = out_positions * decompress_params
    resconv_macs = out_positions * resconv_params

    rom_extra_params = compress_params + decompress_params
    rom_extra_macs = compress_macs + decompress_macs
    return rom_extra_params, resconv_params, rom_extra_macs, resconv_macs


def map_model(
    profile: ModelProfile,
    mode: str = "yoloc",
    d: int = 4,
    u: int = 4,
    weight_bits: int = 8,
    activation_bits: int = 8,
    trainable_tail_layers: int = 1,
) -> WeightMapping:
    """Map a profiled model onto CiM arrays.

    Modes
    -----
    ``"yoloc"``
        Trunk convs frozen in ROM with ReBranch (compression ``d``,
        decompression ``u``); the last ``trainable_tail_layers`` weight
        layers (the prediction head / classifier) stay fully trainable in
        SRAM-CiM.
    ``"all_sram"``
        Everything in SRAM-CiM (the Fig. 13b/c baselines).
    ``"all_rom"``
        Everything except the tail frozen in ROM with *no* branch
        (Option II's extreme; used for area accounting of Fig. 10).
    """
    if mode not in ("yoloc", "all_sram", "all_rom"):
        raise ValueError(f"unknown mapping mode {mode!r}")
    if d < 1 or u < 1:
        raise ValueError("compression ratios must be >= 1")

    weight_layers = profile.weight_layers()
    if not weight_layers:
        raise ValueError("model has no weight layers to map")
    tail_start = len(weight_layers) - trainable_tail_layers

    mapping = WeightMapping(weight_bits=weight_bits, activation_bits=activation_bits)
    for index, layer in enumerate(weight_layers):
        bits = layer.params * weight_bits
        is_tail = index >= tail_start
        if mode == "all_sram" or is_tail:
            mapping.placements.append(
                LayerPlacement(layer, 0, bits, 0, layer.macs, has_branch=False)
            )
            continue
        if mode == "all_rom" or layer.kind != "conv":
            # Linear mid-layers (VGG hidden FC) are frozen without branch.
            mapping.placements.append(
                LayerPlacement(layer, bits, 0, layer.macs, 0, has_branch=False)
            )
            continue
        rom_extra_p, sram_p, rom_extra_m, sram_m = _branch_costs(layer, d, u)
        mapping.placements.append(
            LayerPlacement(
                layer,
                rom_bits=bits + rom_extra_p * weight_bits,
                sram_bits=sram_p * weight_bits,
                rom_macs=layer.macs + rom_extra_m,
                sram_macs=sram_m,
                has_branch=True,
            )
        )
    return mapping


def activation_traffic_bits(profile: ModelProfile, activation_bits: int = 8) -> int:
    """Total activation bits written per inference (one write per layer)."""
    return sum(
        layer.output_activations * activation_bits for layer in profile.layers
    )


def max_activation_bits(profile: ModelProfile, activation_bits: int = 8) -> int:
    """Largest single feature map, which sets the tiling requirement."""
    return profile.max_activation_footprint() * activation_bits


def weight_reload_factor(
    profile: ModelProfile, cache_bits: int, activation_bits: int = 8
) -> int:
    """How many times non-resident weights stream from DRAM per inference.

    When the largest feature map exceeds the activation cache, the image
    is processed in spatial tiles and every non-resident weight is
    re-fetched once per tile (fused-tiling dataflow).  Models whose
    activations fit take exactly one pass.
    """
    if cache_bits <= 0:
        raise ValueError("cache must be positive")
    biggest = max_activation_bits(profile, activation_bits)
    return max(1, math.ceil(biggest / cache_bits))
