"""Compile-once / execute-many deployment runtime.

The YOLoC chiplet is ROM-based: weights are programmed into subarrays
exactly once at fabrication and every later inference streams
activations through the same macros.  This package is that split in
software:

* :func:`compile` — **programming**: fold BN, place ROM/SRAM, quantize
  weights, build tiled engines; once per model.
* :meth:`CompiledModel.run` — **execution**: batched activation
  streaming through the cached engines with per-run / per-session
  :class:`~repro.cim.macro.MacroStats` accounting.
* :class:`EngineCache` — LRU cache keyed by ``(layer id, weight hash,
  config)`` so repeated and concurrent workloads share programmed
  macros; ``capacity=0`` reproduces the seed per-call behaviour.
* :func:`reference_forward` — the seed per-call path kept as a bit-exact
  oracle and benchmark baseline.
* :mod:`repro.runtime.backends` — pluggable execution kernels held to
  bitwise identity with the reference walk, plus :func:`tune_kernel`,
  the compile-time autotuner that benchmarks the registered candidates
  per engine (``RuntimeConfig(backend="auto")``) and records winners in
  snapshots so warm starts skip re-benchmarking.
* :func:`shard` / :class:`ShardedModel` — partition a compiled plan
  across simulated chiplets and execute micro-batch streams
  pipeline-parallel, with inter-chiplet link energy/latency accounting
  (``repro.runtime.sharded``).
* :func:`save` / :func:`load` / :class:`ArtifactStore` — persist a
  compiled model as a versioned, content-addressed on-disk artifact and
  warm-start later processes from it, bitwise identically and much
  faster than a cold compile (``repro.runtime.snapshot``); the same
  store backs the engine cache's disk second tier.

The consuming layers sit on top: ``repro.cim.deploy`` wraps
:class:`CompiledModel`, the functional ``repro.cim.cim_linear`` /
``cim_conv2d`` compile-and-run through the shared cache, and
``repro.arch`` / ``repro.models`` accept compiled models directly.
"""

from repro.runtime.cache import (
    CacheStats,
    EngineCache,
    EngineKey,
    get_default_cache,
    macro_config_key,
    resolve_cache,
    set_default_cache,
    weight_fingerprint,
)
from repro.runtime.backends import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    KernelBackend,
    TuneReport,
    available_backends,
    get_backend,
    register_backend,
    tune_kernel,
)
from repro.runtime.errors import CompileError, UnsupportedModuleError
from repro.runtime.kernels import MacroBitSerialKernel, TiledBitSerialKernel
from repro.runtime.engine import (
    ProgrammedConv,
    ProgrammedLinear,
    conv_engine,
    grouped_conv_execute,
    linear_engine,
)
from repro.runtime.programming import (
    DeployedLayerInfo,
    DeploymentReport,
    build_report,
    fold_batchnorm,
    validate_deployable,
)
from repro.runtime.session import ExecutionSession
from repro.runtime.compiled import (
    CompiledModel,
    RuntimeConfig,
    compile,
    compile_model,
)
from repro.runtime.sharded import (
    ShardedModel,
    ShardPlan,
    ShardSegment,
    StreamResult,
    plan_shards,
    shard,
    stream_rng,
)
from repro.runtime.snapshot import (
    ArtifactStore,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotKeyError,
    SnapshotStaleError,
    SnapshotVersionError,
    artifact_key,
    load,
    save,
)
from repro.runtime.reference import reference_forward

__all__ = [
    "ArtifactStore",
    "CompileError",
    "UnsupportedModuleError",
    "grouped_conv_execute",
    "SnapshotError",
    "SnapshotKeyError",
    "SnapshotCorruptError",
    "SnapshotVersionError",
    "SnapshotStaleError",
    "artifact_key",
    "save",
    "load",
    "ShardedModel",
    "ShardPlan",
    "ShardSegment",
    "StreamResult",
    "plan_shards",
    "shard",
    "stream_rng",
    "CacheStats",
    "EngineCache",
    "EngineKey",
    "get_default_cache",
    "set_default_cache",
    "resolve_cache",
    "macro_config_key",
    "weight_fingerprint",
    "AUTO_BACKEND",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "TuneReport",
    "available_backends",
    "get_backend",
    "register_backend",
    "tune_kernel",
    "MacroBitSerialKernel",
    "TiledBitSerialKernel",
    "ProgrammedConv",
    "ProgrammedLinear",
    "conv_engine",
    "linear_engine",
    "DeployedLayerInfo",
    "DeploymentReport",
    "build_report",
    "fold_batchnorm",
    "validate_deployable",
    "ExecutionSession",
    "CompiledModel",
    "RuntimeConfig",
    "compile",
    "compile_model",
    "reference_forward",
]
