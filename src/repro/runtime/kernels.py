"""Compatibility shim — the kernels live in :mod:`repro.runtime.backends`.

The optimized bit-serial kernels were re-homed as the
``reference-fast`` backend
(:mod:`repro.runtime.backends.reference_fast`) when the pluggable
backend layer landed; every public name keeps importing from here.
"""

from repro.runtime.backends.reference_fast import (  # noqa: F401
    MacroBitSerialKernel,
    TiledBitSerialKernel,
    _StatsAccumulator,
    _TileGroup,
    _recombine_einsum,
)

__all__ = ["MacroBitSerialKernel", "TiledBitSerialKernel"]
