"""Per-session execution accounting.

The seed library accumulated :class:`~repro.cim.macro.MacroStats` on the
deployed model object itself, so concurrent workloads sharing one model
clobbered each other's counters.  An :class:`ExecutionSession` moves the
accounting to the caller: each serving session (a client, a benchmark
sweep, a tenant) owns its own accumulator and passes it to
:meth:`CompiledModel.run`, while the programmed engines stay shared.

A session is safe to share across worker threads: :meth:`record` (and
every reader) holds an internal lock, so concurrent workers executing
batches for one tenant cannot lose updates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Tuple

from repro.cim.macro import MacroStats


@dataclass
class ExecutionSession:
    """Accumulated macro activity of one stream of batches."""

    stats: MacroStats = field(default_factory=MacroStats)
    batches: int = 0
    samples: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, stats: MacroStats, samples: int) -> None:
        with self._lock:
            self.stats = self.stats + stats
            self.batches += 1
            self.samples += int(samples)

    def snapshot(self) -> Tuple[MacroStats, int, int]:
        """Consistent ``(stats, batches, samples)`` view under the lock."""
        with self._lock:
            return self.stats, self.batches, self.samples

    @property
    def energy_per_sample_fj(self) -> float:
        with self._lock:
            return self.stats.total_energy_fj / self.samples if self.samples else 0.0

    @property
    def macs_per_sample(self) -> float:
        with self._lock:
            return self.stats.macs / self.samples if self.samples else 0.0

    def reset(self) -> None:
        with self._lock:
            self.stats = MacroStats()
            self.batches = 0
            self.samples = 0
