"""Per-session execution accounting.

The seed library accumulated :class:`~repro.cim.macro.MacroStats` on the
deployed model object itself, so concurrent workloads sharing one model
clobbered each other's counters.  An :class:`ExecutionSession` moves the
accounting to the caller: each serving session (a client, a benchmark
sweep, a tenant) owns its own accumulator and passes it to
:meth:`CompiledModel.run`, while the programmed engines stay shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cim.macro import MacroStats


@dataclass
class ExecutionSession:
    """Accumulated macro activity of one stream of batches."""

    stats: MacroStats = field(default_factory=MacroStats)
    batches: int = 0
    samples: int = 0

    def record(self, stats: MacroStats, samples: int) -> None:
        self.stats = self.stats + stats
        self.batches += 1
        self.samples += int(samples)

    @property
    def energy_per_sample_fj(self) -> float:
        return self.stats.total_energy_fj / self.samples if self.samples else 0.0

    @property
    def macs_per_sample(self) -> float:
        return self.stats.macs / self.samples if self.samples else 0.0

    def reset(self) -> None:
        self.stats = MacroStats()
        self.batches = 0
        self.samples = 0
