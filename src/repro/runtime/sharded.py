"""Sharded pipeline-parallel execution across simulated chiplets.

The paper's chiplet baseline (Fig. 13c) spreads a model over several
dies connected by SIMBA-style serial links; section 4.3.3 analyses the
latency such an assembly recovers through pipelining.  Until now both
existed only as analytical models (``arch/chiplet.py``,
``arch/pipeline.py``) while the runtime executed every model on one
monolithic engine stack.  This module closes that gap:

* :func:`plan_shards` cuts a :class:`~repro.runtime.CompiledModel`'s
  DAG plan into ``n`` contiguous segments — a balanced layer-cut over
  per-node weight bits and compute cost (MACs from
  :mod:`repro.models.profile` when an input shape is known).  Cuts land
  only on **single-edge dataflow frontiers**: a residual or ReBranch
  diamond (fan-out rejoined by an add) is atomic, so every shard
  boundary carries exactly one activation tensor.
* :class:`ShardedModel` executes that plan.  :meth:`ShardedModel.run`
  streams one batch through all shards in order (bitwise identical to
  the unsharded model — see below); :meth:`ShardedModel.run_stream`
  executes a sequence of micro-batches *pipeline-parallel*: one worker
  thread per shard, bounded inter-shard queues, shard ``k`` working on
  micro-batch ``i`` while shard ``k-1`` works on micro-batch ``i+1``.
* Every activation tensor crossing a shard boundary is charged transfer
  energy and latency on a :class:`~repro.arch.chiplet.ChipletLinkSpec`
  (SIMBA's 1.17 pJ/bit serial link by default), folded into the
  ``link_*`` fields of :class:`~repro.cim.macro.MacroStats` and from
  there into :class:`~repro.runtime.ExecutionSession` accounting.

Numerics contract (docs/numerics.md): sharding cuts the *plan*, never a
batch — each micro-batch traverses every shard whole, so batch-global
activation quantization sees exactly the tensors it would see
unsharded.  ``shard(compiled, n).run(batch)`` applies the same step
objects in the same order with the same RNG stream as
``compiled.run(batch)`` and is therefore bitwise identical to it; the
shards only add ``link_*`` accounting.  In :meth:`run_stream` each
micro-batch owns an RNG derived by :func:`stream_rng`, so a pipelined
stream replays bitwise against per-batch unsharded runs seeded the same
way.

Wall-clock speedup from the worker threads depends on host cores; the
*simulated* speedup reported by :class:`StreamResult` is computed from
the measured per-stage macro latencies of the really-executed traffic
and is therefore machine-independent — that is the serial-vs-pipelined
makespan comparison ``benchmarks/test_bench_shard.py`` pins.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.chiplet import ChipletLinkSpec, SIMBA_LINK
from repro.cim.macro import MacroStats
from repro.obs import trace
from repro.runtime.compiled import (
    _USE_DEFAULT,
    INPUT,
    _ConvStep,
    _GroupedConvStep,
    _LinearStep,
    _PlanNode,
    _RunState,
    CompiledModel,
)
from repro.runtime.session import ExecutionSession


def stream_rng(seed: int, index: int) -> np.random.Generator:
    """The RNG micro-batch ``index`` owns in a seeded pipelined stream.

    Deterministic per (seed, index), so an unsharded replay of one
    micro-batch — ``compiled.run(batch, rng=stream_rng(seed, i))`` —
    draws the same noise stream the pipelined execution drew for it.
    """
    return np.random.default_rng([int(seed), int(index)])


def _node_slots(node: _PlanNode) -> List[Any]:
    """Engine slots a plan node owns (empty for pure function/add nodes)."""
    op = node.op
    if isinstance(op, (_ConvStep, _LinearStep)):
        return [op.slot]
    if isinstance(op, _GroupedConvStep):
        return list(op.slots)
    return []


#: Back-compat alias (pre-DAG name).
_step_slots = _node_slots


def _legal_cuts(nodes: Sequence[_PlanNode], output_index: int) -> List[bool]:
    """``legal[i]``: a shard boundary may fall after node ``i``.

    A cut is legal exactly when its frontier is a **single edge** —
    i.e. node ``i`` is the only producer at or before the cut whose
    value is still live after it.  Serial chains make every boundary
    legal; a fan-out region (a residual or ReBranch diamond, where the
    shortcut keeps an earlier value live) closes boundaries until the
    fan-in rejoins.  Single-edge frontiers are what let shards exchange
    exactly one activation tensor per boundary.
    """
    n = len(nodes)
    last_use: Dict[int, int] = {}
    for i, node in enumerate(nodes):
        for j in node.inputs:
            last_use[j] = i
    last_use[output_index] = n  # the plan output is live past every cut
    closes_at: Dict[int, List[int]] = {}
    for producer, last in last_use.items():
        closes_at.setdefault(last, []).append(producer)
    live = {INPUT} if INPUT in last_use else set()
    legal: List[bool] = []
    for i in range(n):
        for producer in closes_at.get(i, ()):
            live.discard(producer)
        if last_use.get(i, i) > i:
            live.add(i)
        legal.append(live == {i})
    return legal


def _blocks_of(nodes: Sequence[_PlanNode], output_index: int) -> List[List[int]]:
    """Group node indices into cuttable, weight-anchored blocks.

    Nodes are first split at legal (single-edge-frontier) cuts; a DAG
    diamond — residual block, ReBranch — is therefore one atomic
    segment.  Segments carrying no engine slots (pure activations,
    pooling, reshape, fan-in adds between weight segments) ride with
    the preceding weight-anchored block; a leading run of pure segments
    merges into the first weight block, so every block is anchored on
    at least one weight layer.
    """
    legal = _legal_cuts(nodes, output_index)
    segments: List[List[int]] = []
    current: List[int] = []
    for i in range(len(nodes)):
        current.append(i)
        if legal[i] or i == len(nodes) - 1:
            segments.append(current)
            current = []
    blocks: List[List[int]] = []
    for segment in segments:
        anchored = any(_node_slots(nodes[i]) for i in segment)
        if anchored or not blocks:
            blocks.append(segment)
        else:
            blocks[-1].extend(segment)
    if len(blocks) > 1 and not any(_node_slots(nodes[i]) for i in blocks[0]):
        blocks[1] = blocks[0] + blocks[1]
        del blocks[0]
    return blocks


@dataclass(frozen=True)
class ShardSegment:
    """One shard's contiguous slice of the compiled step plan."""

    index: int
    step_indices: Tuple[int, ...]
    layer_ids: Tuple[str, ...]
    weight_bits: float
    macs: float
    cost: float


@dataclass(frozen=True)
class ShardPlan:
    """A balanced contiguous partition of a compiled model's plan.

    Segments cover every step exactly once, in order; each segment is
    anchored on at least one weight layer (pure activation / pooling /
    reshape steps ride with the weight layer that feeds them).
    """

    n_shards: int
    segments: Tuple[ShardSegment, ...]

    @property
    def total_weight_bits(self) -> float:
        return sum(s.weight_bits for s in self.segments)

    @property
    def total_macs(self) -> float:
        return sum(s.macs for s in self.segments)

    @property
    def balance(self) -> float:
        """Max segment cost over mean segment cost (1.0 = perfect)."""
        costs = [s.cost for s in self.segments]
        mean = sum(costs) / len(costs) if costs else 0.0
        return max(costs) / mean if mean else 1.0

    def describe(self) -> str:
        lines = []
        for seg in self.segments:
            lines.append(
                f"shard {seg.index}: {len(seg.step_indices)} steps, "
                f"{seg.weight_bits / 8 / 1024:.1f} KiB weights, "
                f"{seg.macs / 1e6:.2f} MMACs "
                f"[{', '.join(seg.layer_ids) or 'no weight layers'}]"
            )
        return "\n".join(lines)


def _balanced_cuts(costs: Sequence[float], n: int) -> List[int]:
    """Linear-partition DP: split ``costs`` into ``n`` contiguous runs
    minimizing the maximum run cost.  Returns run lengths."""
    b = len(costs)
    prefix = [0.0]
    for c in costs:
        prefix.append(prefix[-1] + c)
    span = lambda i, j: prefix[j] - prefix[i]  # noqa: E731
    # best[k][j]: minimal max-run-cost splitting costs[:j] into k runs.
    inf = float("inf")
    best = [[inf] * (b + 1) for _ in range(n + 1)]
    cut = [[0] * (b + 1) for _ in range(n + 1)]
    best[0][0] = 0.0
    for k in range(1, n + 1):
        for j in range(k, b - (n - k) + 1):
            for i in range(k - 1, j):
                if best[k - 1][i] == inf:
                    continue
                candidate = max(best[k - 1][i], span(i, j))
                if candidate < best[k][j]:
                    best[k][j] = candidate
                    cut[k][j] = i
    lengths: List[int] = []
    j = b
    for k in range(n, 0, -1):
        i = cut[k][j]
        lengths.append(j - i)
        j = i
    lengths.reverse()
    return lengths


def plan_shards(
    compiled: CompiledModel,
    n_shards: int,
    *,
    input_shape: Optional[Tuple[int, ...]] = None,
) -> ShardPlan:
    """Balanced contiguous layer-cut of ``compiled``'s plan.

    The cut cost of a block is its MAC count from the analytic profile
    when ``input_shape`` is given (compute-balanced pipeline stages —
    the quantity that sets stage latency); otherwise its programmed
    weight bits (capacity-balanced, the only cost known without a
    dataflow shape).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    nodes = compiled._nodes
    blocks = _blocks_of(nodes, compiled._output_index)
    if n_shards > len(blocks):
        raise ValueError(
            f"cannot cut {n_shards} shards: the plan has only "
            f"{len(blocks)} weight-anchored blocks"
        )

    macs_by_layer: Dict[str, float] = {}
    if input_shape is not None:
        profile = compiled.profile(input_shape)
        for layer in profile.weight_layers():
            macs_by_layer[layer.name] = float(layer.macs)

    block_bits: List[float] = []
    block_macs: List[float] = []
    for block in blocks:
        bits = 0.0
        macs = 0.0
        for i in block:
            for slot in _node_slots(nodes[i]):
                bits += float(slot.weight_fn().size * slot.config_fn().weight_bits)
                # Grouped convs map several slots onto one profiled
                # layer; each slot owns its profile_share of the MACs.
                macs += (
                    macs_by_layer.get(slot.profile_name, 0.0) * slot.profile_share
                )
        block_bits.append(bits)
        block_macs.append(macs)
    use_macs = sum(block_macs) > 0
    costs = block_macs if use_macs else block_bits

    lengths = _balanced_cuts(costs, n_shards)
    segments: List[ShardSegment] = []
    start = 0
    for index, length in enumerate(lengths):
        run = blocks[start : start + length]
        step_indices = tuple(i for block in run for i in block)
        layer_ids = tuple(
            slot.layer_id for i in step_indices for slot in _node_slots(nodes[i])
        )
        segments.append(
            ShardSegment(
                index=index,
                step_indices=step_indices,
                layer_ids=layer_ids,
                weight_bits=sum(block_bits[start + k] for k in range(length)),
                macs=sum(block_macs[start + k] for k in range(length)),
                cost=sum(costs[start + k] for k in range(length)),
            )
        )
        start += length
    return ShardPlan(n_shards=n_shards, segments=tuple(segments))


@dataclass
class StreamResult:
    """Outcome of one pipelined micro-batch stream.

    ``compute_ns[i][s]`` is the *simulated* macro latency micro-batch
    ``i`` spent on shard ``s`` (measured from the really-executed
    traffic's :class:`MacroStats`); ``link_ns[i][s]`` the serial-link
    transfer latency leaving shard ``s``.  The makespans are derived
    from those measurements, so they are machine-independent even
    though the execution itself ran on host threads.
    """

    outputs: List[np.ndarray]
    per_batch: List[MacroStats]
    stats: MacroStats
    compute_ns: np.ndarray  # (n_batches, n_shards)
    link_ns: np.ndarray  # (n_batches, max(n_shards - 1, 0))
    wall_s: float
    n_shards: int

    @property
    def n_batches(self) -> int:
        return len(self.outputs)

    @property
    def serial_makespan_ns(self) -> float:
        """Monolithic single-chip baseline: all compute, no links, no
        overlap — what a single-shard serial run of the stream takes."""
        return float(self.compute_ns.sum())

    @property
    def sharded_serial_makespan_ns(self) -> float:
        """The same shards run one micro-batch at a time (no pipeline
        overlap): compute plus every link crossing, serially."""
        return float(self.compute_ns.sum() + self.link_ns.sum())

    @property
    def pipelined_makespan_ns(self) -> float:
        """Pipeline-parallel makespan: shard ``s`` starts micro-batch
        ``i`` once the batch arrived over the link *and* the shard
        finished micro-batch ``i - 1``."""
        n_batches, n_shards = self.compute_ns.shape
        finish = np.zeros((n_batches, n_shards))
        for i in range(n_batches):
            for s in range(n_shards):
                arrived = (
                    finish[i, s - 1] + self.link_ns[i, s - 1] if s else 0.0
                )
                free = finish[i - 1, s] if i else 0.0
                finish[i, s] = max(arrived, free) + self.compute_ns[i, s]
        return float(finish[-1, -1]) if n_batches else 0.0

    @property
    def pipeline_speedup(self) -> float:
        """Simulated throughput gain of pipelining over the monolithic
        serial execution of the same stream."""
        pipelined = self.pipelined_makespan_ns
        return self.serial_makespan_ns / pipelined if pipelined else 1.0

    @property
    def link_energy_fj(self) -> float:
        return self.stats.link_energy_fj


class _StreamItem:
    __slots__ = ("index", "x", "state", "compute_ns", "link_ns")

    def __init__(self, index: int, x: np.ndarray, state: _RunState, n_shards: int):
        self.index = index
        self.x = x
        self.state = state
        self.compute_ns = np.zeros(n_shards)
        self.link_ns = np.zeros(max(n_shards - 1, 0))


class ShardedModel:
    """A compiled model partitioned across simulated chiplet shards.

    Obtain one through :func:`shard` (or ``runtime.compile(...,
    shards=n)``).  The shards reference the *same* programmed engines as
    the underlying :class:`CompiledModel` — sharding cuts the execution
    plan, it never reprograms or duplicates macros.
    """

    def __init__(
        self,
        compiled: CompiledModel,
        plan: ShardPlan,
        link: Optional[ChipletLinkSpec] = None,
    ):
        self.compiled = compiled
        self.plan = plan
        self.link = link if link is not None else SIMBA_LINK
        self._stages: List[Tuple[int, ...]] = [
            tuple(segment.step_indices) for segment in plan.segments
        ]
        # Every stage boundary must be a single-edge frontier: the one
        # value crossing it is the previous stage's last node.  Guard
        # it for externally supplied (or restored) plans.
        nodes = compiled._nodes
        flat = [i for stage in self._stages for i in stage]
        if flat != list(range(len(nodes))):
            raise ValueError(
                "shard plan must cover the plan nodes exactly once, in order"
            )
        legal = _legal_cuts(nodes, compiled._output_index)
        for stage in self._stages[:-1]:
            if stage and not legal[stage[-1]]:
                raise ValueError(
                    f"illegal shard boundary after node {stage[-1]} "
                    f"({nodes[stage[-1]].name!r}): more than one live value "
                    f"crosses it (a fan-out diamond cannot be cut)"
                )

    def _run_stage(self, s: int, x: np.ndarray, state: _RunState) -> np.ndarray:
        """Execute stage ``s`` on the inbound tensor ``x``.

        The inbound value is bound to the producer it represents — the
        previous stage's last node (the single crossing edge), or the
        model input for stage 0 — so in-stage nodes resolve their DAG
        edges exactly as the unsharded plan would.
        """
        indices = self._stages[s]
        if not indices:
            return x
        nodes = self.compiled._nodes
        inbound = indices[0] - 1 if s else INPUT
        values: Dict[int, np.ndarray] = {inbound: x}
        for i in indices:
            node = nodes[i]
            args = tuple(values[j] for j in node.inputs)
            values[i] = node.op.apply(*args, state)
        return values[indices[-1]]

    def _run_stage_from(
        self, s: int, x: np.ndarray, state: _RunState, start_node: int
    ) -> np.ndarray:
        """Execute the suffix of stage ``s`` starting at ``start_node``.

        The failover replay path: a micro-batch displaced at an old
        shard boundary resumes mid-stage in the recovered topology.
        ``x`` is the value of node ``start_node - 1`` (or the model
        input when ``start_node`` is 0) — legal as the only binding
        because the displacement point was a single-edge frontier of
        the *original* topology, so no other value is live across it.
        Bitwise identical to running the full plan from scratch for the
        nodes it executes (same step objects, same RNG stream).
        """
        indices = tuple(i for i in self._stages[s] if i >= start_node)
        if not indices:
            return x
        nodes = self.compiled._nodes
        inbound = indices[0] - 1 if indices[0] > 0 else INPUT
        values: Dict[int, np.ndarray] = {inbound: x}
        for i in indices:
            node = nodes[i]
            args = tuple(values[j] for j in node.inputs)
            values[i] = node.op.apply(*args, state)
        return values[indices[-1]]

    # -- delegation (duck-compatible with CompiledModel) ---------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def model(self):
        return self.compiled.model

    @property
    def config(self):
        return self.compiled.config

    @property
    def report(self):
        return self.compiled.report

    @property
    def n_weight_layers(self) -> int:
        return self.compiled.n_weight_layers

    def new_session(self) -> ExecutionSession:
        return ExecutionSession()

    def ensure_fresh(self) -> int:
        return self.compiled.ensure_fresh()

    def profile(self, input_shape: Tuple[int, ...]):
        return self.compiled.profile(input_shape)

    # -- link accounting -----------------------------------------------
    def _transfer_stats(self, x: np.ndarray) -> MacroStats:
        """Stats of one activation tensor crossing one shard boundary.

        Quantized activations cross the serial link, so the payload is
        ``activation_bits`` per element (the same convention the
        analytical chiplet assembly uses), not host-float width.
        """
        bits = float(x.size) * self.compiled.config.activation_bits
        return MacroStats(
            link_bits=bits,
            link_energy_fj=self.link.transfer_energy_pj(bits) * 1e3,
            link_latency_ns=self.link.transfer_time_ns(bits),
        )

    # -- serial execution ----------------------------------------------
    def run(
        self,
        batch: np.ndarray,
        *,
        encoding: Any = _USE_DEFAULT,
        rng: Optional[np.random.Generator] = None,
        session: Optional[ExecutionSession] = None,
        degrade: Any = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Stream one batch through all shards, in plan order.

        Bitwise identical to ``self.compiled.run(batch, ...)``: the same
        step objects execute in the same order against the same RNG
        stream; shard boundaries only add ``link_*`` accounting to the
        returned stats.  ``degrade`` routes engines through the chaos
        runtime's live degradation paths, as in
        :meth:`CompiledModel.run`.
        """
        state = _RunState(
            rng=rng if rng is not None else self.compiled._rng,
            encoding=(
                self.compiled.config.encoding
                if encoding is _USE_DEFAULT
                else encoding
            ),
            degrade=degrade,
        )
        x = np.asarray(batch, dtype=np.float64)
        n_samples = x.shape[0] if x.ndim else 1
        last = len(self._stages) - 1
        tracer = trace.current()  # resolved once; None is the hot path
        for s in range(len(self._stages)):
            if tracer is None:
                x = self._run_stage(s, x, state)
            else:
                with tracer.span(f"stage-{s}", "shard", shard=s) as sp:
                    before = state.stats.latency_ns
                    x = self._run_stage(s, x, state)
                    sp.set("chip_ns", state.stats.latency_ns - before)
            if s < last:
                transfer = self._transfer_stats(x)
                state.stats = state.stats + transfer
                if tracer is not None:
                    # A point span on the wall clock; its chip_ns extent
                    # is what matters on the simulated-chip track.
                    with tracer.span(
                        f"link-{s}", "link", shard=s,
                        chip_ns=transfer.link_latency_ns,
                        link_bits=transfer.link_bits,
                        link_energy_fj=transfer.link_energy_fj,
                    ):
                        pass
        if session is not None:
            session.record(state.stats, samples=n_samples)
        return x, state.stats

    # -- pipelined execution -------------------------------------------
    def run_stream(
        self,
        batches: Sequence[np.ndarray],
        *,
        seed: int = 0,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        encoding: Any = _USE_DEFAULT,
        session: Optional[ExecutionSession] = None,
        queue_depth: int = 2,
        chaos: Any = None,
    ) -> StreamResult:
        """Execute micro-batches pipeline-parallel across the shards.

        One worker thread per shard, connected by bounded queues of
        ``queue_depth`` micro-batches (backpressure: a fast early shard
        cannot run unboundedly ahead of a slow late one).  Each
        micro-batch owns its RNG — ``rngs[i]`` when given, else
        :func:`stream_rng` ``(seed, i)`` — so outputs are bitwise
        identical to per-batch unsharded runs with the same generators,
        and never depend on thread interleaving.

        Shards never split a micro-batch: batch-global quantization
        steps see whole batches, exactly as unsharded (the numerics
        contract in docs/numerics.md).

        ``chaos`` (a :class:`repro.chaos.ChaosController`) switches to
        the chaos-instrumented executor: fault injection, shard
        failover and degraded-mode execution per the controller's
        schedule, returning a :class:`repro.chaos.ChaosStreamResult`.
        The clean path below is untouched when ``chaos`` is ``None``.
        """
        if chaos is not None:
            from repro.chaos.stream import run_chaos_stream

            return run_chaos_stream(
                self,
                batches,
                chaos,
                seed=seed,
                rngs=rngs,
                encoding=encoding,
                session=session,
                queue_depth=queue_depth,
            )
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if rngs is not None and len(rngs) != len(batches):
            raise ValueError(
                f"{len(rngs)} rngs for {len(batches)} micro-batches"
            )
        n_shards = len(self._stages)
        resolved_encoding = (
            self.compiled.config.encoding if encoding is _USE_DEFAULT else encoding
        )
        items: List[_StreamItem] = []
        for i, batch in enumerate(batches):
            rng = rngs[i] if rngs is not None else stream_rng(seed, i)
            items.append(
                _StreamItem(
                    i,
                    np.asarray(batch, dtype=np.float64),
                    _RunState(rng=rng, encoding=resolved_encoding),
                    n_shards,
                )
            )

        queues: List["queue.Queue"] = [
            queue.Queue(maxsize=queue_depth) for _ in range(n_shards + 1)
        ]
        errors: List[BaseException] = []
        last = n_shards - 1
        # Resolved once, before the workers start: every shard thread
        # traces into the same tracer (or none), never a mid-stream mix.
        tracer = trace.current()

        def worker(s: int) -> None:
            inbox, outbox = queues[s], queues[s + 1]
            while True:
                item = inbox.get()
                if item is None:
                    outbox.put(None)
                    return
                if errors:
                    continue  # drain the pipe; the stream already failed
                try:
                    before = item.state.stats.latency_ns
                    if tracer is None:
                        item.x = self._run_stage(s, item.x, item.state)
                    else:
                        # One span per (shard, micro-batch) occupancy,
                        # recorded on this shard's worker thread — the
                        # per-shard tracks of the exported trace.
                        with tracer.span(
                            f"shard{s}:mb{item.index}",
                            "shard",
                            shard=s,
                            microbatch=item.index,
                        ) as sp:
                            item.x = self._run_stage(s, item.x, item.state)
                            sp.set(
                                "chip_ns",
                                item.state.stats.latency_ns - before,
                            )
                    item.compute_ns[s] = item.state.stats.latency_ns - before
                    if s < last:
                        transfer = self._transfer_stats(item.x)
                        item.state.stats = item.state.stats + transfer
                        item.link_ns[s] = transfer.link_latency_ns
                        if tracer is not None:
                            with tracer.span(
                                f"link{s}:mb{item.index}",
                                "link",
                                shard=s,
                                microbatch=item.index,
                                chip_ns=transfer.link_latency_ns,
                                link_bits=transfer.link_bits,
                            ):
                                pass
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    errors.append(error)
                    continue
                outbox.put(item)

        threads = [
            threading.Thread(target=worker, args=(s,), name=f"shard-{s}", daemon=True)
            for s in range(n_shards)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()

        done: List[_StreamItem] = []

        def collect() -> None:
            while True:
                item = queues[n_shards].get()
                if item is None:
                    return
                done.append(item)

        collector = threading.Thread(target=collect, name="shard-collect", daemon=True)
        collector.start()
        for item in items:
            queues[0].put(item)
        queues[0].put(None)
        collector.join()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started
        if errors:
            raise errors[0]

        done.sort(key=lambda item: item.index)
        total = MacroStats()
        per_batch: List[MacroStats] = []
        for item in done:
            per_batch.append(item.state.stats)
            total = total + item.state.stats
            if session is not None:
                samples = item.x.shape[0] if item.x.ndim else 1
                session.record(item.state.stats, samples=samples)
        return StreamResult(
            outputs=[item.x for item in done],
            per_batch=per_batch,
            stats=total,
            compute_ns=np.stack([item.compute_ns for item in done])
            if done
            else np.zeros((0, n_shards)),
            link_ns=np.stack([item.link_ns for item in done])
            if done
            else np.zeros((0, max(n_shards - 1, 0))),
            wall_s=wall_s,
            n_shards=n_shards,
        )


def shard(
    compiled: CompiledModel,
    n_shards: int,
    *,
    link: Optional[ChipletLinkSpec] = None,
    input_shape: Optional[Tuple[int, ...]] = None,
    plan: Optional[ShardPlan] = None,
) -> ShardedModel:
    """Partition ``compiled`` across ``n_shards`` simulated chiplets.

    ``input_shape`` (when known) switches the layer-cut from
    weight-bit balance to MAC balance — the right cost for pipeline
    stage latency.  ``plan`` overrides the automatic cut entirely.
    Re-sharding a :class:`ShardedModel` re-cuts the underlying compiled
    model; engines are shared either way.
    """
    if isinstance(compiled, ShardedModel):
        compiled = compiled.compiled
    if plan is None:
        plan = plan_shards(compiled, n_shards, input_shape=input_shape)
    elif plan.n_shards != n_shards:
        raise ValueError(
            f"plan has {plan.n_shards} shards but n_shards={n_shards}"
        )
    return ShardedModel(compiled, plan, link=link)
