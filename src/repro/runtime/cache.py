"""LRU cache of programmed CiM engines.

A ROM-based chiplet programs its subarrays exactly once — at mask time —
and every later inference streams activations through the same macros.
The software analogue is this cache: programming an engine (weight
quantization + bit-plane decomposition + tile placement) happens once
per distinct ``(layer id, weight fingerprint, configuration)`` key, and
repeated or concurrent workloads that deploy the same weights share the
programmed engines instead of rebuilding them per call.

``EngineCache(capacity=0)`` is the *per-call* mode: nothing is ever
retained, so every lookup programs a fresh engine — the seed library's
original behaviour, kept available for baselines and benchmarks.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from typing import TYPE_CHECKING

import numpy as np

from repro.obs import trace
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.cim.macro import MacroConfig

_log = get_logger("runtime.cache")


@dataclass(frozen=True)
class EngineKey:
    """Identity of one programmed engine.

    ``layer_id`` scopes the engine to a layer (or ``"functional"`` for
    the stateless :func:`repro.cim.cim_linear` path), ``weight_hash``
    fingerprints the exact float weights, and ``config_key`` captures
    every macro/quantization parameter that affects programming.
    """

    layer_id: str
    weight_hash: str
    config_key: Tuple


@dataclass
class CacheStats:
    """Counters of cache activity since construction (or ``reset``).

    ``disk_hits`` / ``disk_misses`` count the disk second tier (when the
    cache owns an artifact store): a disk hit restores a programmed
    engine instead of programming it, a disk miss — whether the store
    raised *or* returned nothing — falls through to programming from
    scratch.  In-memory ``hits`` never touch the disk tier, so
    ``misses == disk_hits + disk_misses`` on a disk-backed cache.

    ``tuned`` counts engines that entered the cache carrying an
    autotuned kernel (programmed with ``backend="auto"`` or restored
    from a tuned snapshot/artifact).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    programmed: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    tuned: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.programmed = 0
        self.disk_hits = self.disk_misses = self.tuned = 0


def weight_fingerprint(weight: np.ndarray) -> str:
    """Content hash of a float weight tensor (value + shape)."""
    arr = np.ascontiguousarray(np.asarray(weight, dtype=np.float64))
    digest = hashlib.sha1(arr.tobytes())
    digest.update(repr(arr.shape).encode())
    return digest.hexdigest()


def _bitline_key(bitline) -> Tuple:
    if bitline is None:
        return ()
    return (
        bitline.max_rows,
        bitline.v_precharge,
        bitline.noise_sigma_counts,
        bitline.saturation,
    )


def macro_config_key(config: "MacroConfig") -> Tuple:
    """Hashable identity of every programming-relevant config field."""
    cell = config.cell
    return (
        config.rows,
        config.phys_columns,
        config.n_adcs,
        (config.adc.bits, config.adc.energy_fj, config.adc.conversion_time_ns),
        # The cell by value, not by name: frozen CellSpecs are commonly
        # swept via dataclasses.replace, which keeps the name.
        (
            cell.name,
            cell.transistors,
            cell.area_um2,
            cell.volatile,
            cell.computes,
            cell.read_energy_fj,
            cell.standby_leakage_pw,
        ),
        config.weight_bits,
        config.input_bits,
        config.signed_weights,
        config.signed_inputs,
        config.cycle_time_ns,
        config.wl_energy_fj,
        config.peripheral_energy_fj_per_cycle,
        _bitline_key(config.bitline),
    )


class EngineCache:
    """Thread-safe LRU cache of programmed engines.

    ``capacity`` bounds the number of retained engines; the least
    recently used engine is evicted first.  ``capacity=0`` disables
    retention entirely (every lookup is a miss that programs a fresh
    engine), which reproduces the seed library's per-call behaviour.

    The bound is an entry count, not bytes — a programmed engine holds
    its float64 weight bit planes, integer codes and the fused float32
    kernel operand (roughly 110 bytes per weight at 8-bit), so
    workloads that sweep many large distinct weight sets through one
    cache should size ``capacity`` (or use a dedicated cache)
    accordingly.

    ``store`` (an :class:`~repro.runtime.snapshot.ArtifactStore`) adds a
    **disk second tier**: a memory miss first tries to restore the
    engine from a persisted artifact (``disk_hits``), and an engine
    programmed from scratch is written back so the *next* process warm
    starts.  Disk failures of any kind — corrupted artifact, version
    mismatch, filesystem error — degrade to programming from scratch;
    the disk tier can make a lookup cheaper, never make it fail.
    """

    def __init__(self, capacity: int = 128, store: Optional[Any] = None):
        if capacity < 0:
            raise ValueError(f"capacity cannot be negative, got {capacity}")
        self.capacity = capacity
        self.store = store
        self.stats = CacheStats()
        self._entries: "OrderedDict[EngineKey, Any]" = OrderedDict()
        # Provenance of each resident engine: "programmed", "disk"
        # (restored from the disk tier) or "snapshot" (seeded by put()).
        self._tiers: Dict[EngineKey, str] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: EngineKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: EngineKey) -> Optional[Any]:
        """The cached engine for ``key``, or None (counts as hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def get_or_program(self, key: EngineKey, factory: Callable[[], Any]) -> Any:
        """Return the engine for ``key``: memory hit, disk hit, or program."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        # Disk tier and programming both run outside the lock: neither
        # may serialize concurrent sessions compiling other layers.
        # Without a store there is no disk tier to consult at all.
        if self.store is not None:
            with trace.maybe_span(
                "engine_disk_load", "cache", layer=key.layer_id
            ) as sp:
                restored = self._from_disk(key)
                if sp is not None:
                    sp.set("hit", restored is not None)
            if restored is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                _log.debug("engine %s: restored from disk tier", key.layer_id)
                return self._retain(key, restored, "disk")
        with trace.maybe_span("engine_program", "cache", layer=key.layer_id):
            engine = factory()
        with self._lock:
            self.stats.programmed += 1
        _log.debug("engine %s: programmed from scratch", key.layer_id)
        self._to_disk(key, engine)
        return self._retain(key, engine, "programmed")

    def _retain(self, key: EngineKey, engine: Any, tier: str = "programmed") -> Any:
        if getattr(engine, "tuned", False):
            tier = tier + "+tuned"
            with self._lock:
                self.stats.tuned += 1
        with self._lock:
            if self.capacity > 0:
                existing = self._entries.get(key)
                if existing is not None:
                    # A concurrent session landed it first; share that one.
                    self._entries.move_to_end(key)
                    return existing
                self._entries[key] = engine
                self._tiers[key] = tier
                while len(self._entries) > self.capacity:
                    evicted, _ = self._entries.popitem(last=False)
                    self._tiers.pop(evicted, None)
                    self.stats.evictions += 1
        return engine

    def tier_of(self, key: EngineKey) -> Optional[str]:
        """Provenance of the resident engine for ``key`` —
        ``"programmed"``, ``"disk"`` or ``"snapshot"``, with a
        ``"+tuned"`` suffix when the engine carries an autotuned kernel
        — or ``None`` when the key is not resident in the memory
        tier."""
        with self._lock:
            if key not in self._entries:
                return None
            return self._tiers.get(key, "programmed")

    def _from_disk(self, key: EngineKey) -> Optional[Any]:
        """Disk-tier lookup; any failure degrades to a miss, never raises.

        A quiet ``None`` from the store counts as a disk miss exactly
        like a raised error does — every disk-tier consultation lands in
        either ``disk_hits`` or ``disk_misses``, so the two reconcile
        against ``misses``.
        """
        try:
            restored = self.store.read_engine(key)
        except Exception:
            # Missing, corrupted, stale or version-mismatched artifact —
            # fall through to programming from scratch.  The server must
            # keep serving whatever the store's state is.
            restored = None
        if restored is None:
            with self._lock:
                self.stats.disk_misses += 1
        return restored

    def _to_disk(self, key: EngineKey, engine: Any) -> None:
        """Best-effort write-back; storage failures never fail the lookup."""
        if self.store is None:
            return
        try:
            self.store.write_engine(key, engine)
        except Exception:
            pass

    def put(self, key: EngineKey, engine: Any) -> None:
        """Seed ``key`` with an externally restored engine (snapshot load)."""
        tier = "snapshot"
        if getattr(engine, "tuned", False):
            tier = tier + "+tuned"
            with self._lock:
                self.stats.tuned += 1
        with self._lock:
            if self.capacity <= 0:
                return
            self._entries[key] = engine
            self._entries.move_to_end(key)
            self._tiers[key] = tier
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._tiers.pop(evicted, None)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._tiers.clear()

    def keys(self):
        with self._lock:
            return list(self._entries.keys())


_default_cache = EngineCache()


def get_default_cache() -> EngineCache:
    """The process-wide engine cache shared by default."""
    return _default_cache


def set_default_cache(cache: EngineCache) -> EngineCache:
    """Replace the process-wide cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def resolve_cache(cache: Optional[EngineCache]) -> EngineCache:
    """``cache`` if given, else the process-wide default."""
    return cache if cache is not None else _default_cache
