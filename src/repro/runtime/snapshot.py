"""Persistent compiled-artifact store: program once per fleet, not per process.

PR 1 split programming from execution *in memory*; every process still
paid the full programming cost (weight quantization, bit-plane
decomposition, tile placement, kernel fusion) on startup.  This module
makes the compile-once contract durable: a :class:`CompiledModel` is
serialized to a **versioned, content-addressed on-disk artifact** and
restored by :func:`load` into a model whose outputs are **bitwise
identical** to the freshly compiled one — including under bit-line
noise, because the restored engines hold the exact programmed state
(same tiles, same order, same RNG draw sequence).

Artifact contents (one ``.npz`` container per artifact):

* the deployable module tree (architecture spec + float64 parameters +
  ``requires_grad`` flags — placement-relevant, so preserved exactly);
* per programmed engine: the quantized weight codes and per-channel
  scales, the programming-time macro configuration, and — for
  noise-free configurations — the fused kernel's bit-packed float32
  weight planes, so load never re-derives what programming computed;
* for sharded deployments: the realized :class:`ShardPlan` and
  inter-chiplet link spec;
* a JSON header carrying the format version, the content key, and the
  per-layer weight fingerprints the engine cache keys on.

Content addressing: :func:`artifact_key` digests the architecture spec,
every parameter's value fingerprint, the :class:`RuntimeConfig`, and the
shard request, so one ``(model weights, config, shards)`` triple maps to
one artifact across processes, restarts and fleet replicas.

Failure behaviour is typed: a missing key raises
:class:`SnapshotKeyError`, a truncated or corrupted container
:class:`SnapshotCorruptError`, an incompatible format
:class:`SnapshotVersionError`, and an artifact whose engines do not
match its own recorded weights :class:`SnapshotStaleError` — all
subclasses of :class:`SnapshotError`, which the serving layers catch to
fall back to a cold compile instead of crashing.

``tests/test_snapshot.py`` pins the save→load→run bitwise identity
differentially (per model family × shard count × seed, with and without
bit-line noise, and across a process boundary);
``benchmarks/test_bench_warmstart.py`` pins warm-start load at >= 5x
faster than cold compilation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.arch.chiplet import ChipletLinkSpec
from repro.obs import trace
from repro.obs.log import get_logger
from repro.cim.adc import AdcSpec
from repro.cim.bitline import BitlineModel
from repro.cim.cells import CellSpec
from repro.cim.encoding import (
    ActivationEncoding,
    BitSerialEncoding,
    PulseWidthEncoding,
    UnaryPulseEncoding,
)
from repro.cim.macro import CimMacro, MacroConfig
from repro.cim.mvm import CimTiledMatmul, _Tile
from repro.rebranch.branch import ReBranchConv2d
from repro.runtime.cache import EngineCache, EngineKey, resolve_cache
from repro.runtime.compiled import CompiledModel, RuntimeConfig
from repro.runtime.compiled import compile as _compile
from repro.runtime.engine import (
    ProgrammedConv,
    ProgrammedLinear,
    conv_engine_key,
    linear_engine_key,
)
from repro.runtime.backends import DEFAULT_BACKEND, get_backend
from repro.runtime.kernels import TiledBitSerialKernel, _TileGroup
from repro.runtime.sharded import ShardedModel, ShardPlan, ShardSegment
from repro.runtime.sharded import shard as _shard

#: Container format marker; a file without it is not an artifact at all.
FORMAT = "repro-compiled-model"

#: Bumped on any incompatible change to the artifact layout.  The
#: version participates in :func:`artifact_key`, so a format bump makes
#: old artifacts *miss* (recompile-and-resave) rather than error.
#: History: 1 — linear step plans; 2 — DAG plan IR (residual composites
#: as first-class module kinds, per-group engines for grouped convs,
#: plan topology recorded in the header); 3 — kernel-backend provenance
#: (tuned winner + backend request per engine, so warm starts rebuild
#: autotuned kernels without re-benchmarking).
VERSION = 3

#: Leading bytes of every artifact container file.
MAGIC = b"RCMA1\n"

#: Array payloads are aligned to this boundary so the mmap'd views the
#: loader hands out are safely aligned for every dtype.
_ALIGN = 64


# ----------------------------------------------------------------------
# Typed failures
# ----------------------------------------------------------------------
class SnapshotError(Exception):
    """Base class of every artifact-store failure."""


class SnapshotKeyError(SnapshotError, KeyError):
    """The store holds no artifact under the requested key."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return Exception.__str__(self)


class SnapshotCorruptError(SnapshotError):
    """The artifact container is truncated, unreadable or inconsistent."""


class SnapshotVersionError(SnapshotError):
    """The artifact was written by an incompatible format version."""


class SnapshotStaleError(SnapshotError):
    """The artifact's programmed engines do not match its own weights."""


# ----------------------------------------------------------------------
# Configuration (de)serialization — exact float round-trip through JSON
# (json uses float.__repr__, the shortest round-tripping representation)
# ----------------------------------------------------------------------
def _cell_to_meta(cell: CellSpec) -> Dict[str, Any]:
    return {
        "name": cell.name,
        "transistors": int(cell.transistors),
        "area_um2": float(cell.area_um2),
        "volatile": bool(cell.volatile),
        "computes": bool(cell.computes),
        "read_energy_fj": float(cell.read_energy_fj),
        "standby_leakage_pw": float(cell.standby_leakage_pw),
    }


def _cell_from_meta(meta: Dict[str, Any]) -> CellSpec:
    return CellSpec(**meta)


def _adc_to_meta(adc: AdcSpec) -> Dict[str, Any]:
    return {
        "bits": int(adc.bits),
        "energy_fj": float(adc.energy_fj),
        "conversion_time_ns": float(adc.conversion_time_ns),
        "area_um2": float(adc.area_um2),
    }


def _bitline_to_meta(bitline: Optional[BitlineModel]) -> Optional[Dict[str, Any]]:
    if bitline is None:
        return None
    return {
        "max_rows": int(bitline.max_rows),
        "v_precharge": float(bitline.v_precharge),
        "noise_sigma_counts": float(bitline.noise_sigma_counts),
        "saturation": None if bitline.saturation is None else float(bitline.saturation),
    }


def _bitline_from_meta(meta: Optional[Dict[str, Any]]) -> Optional[BitlineModel]:
    return None if meta is None else BitlineModel(**meta)


def _macro_config_to_meta(config: MacroConfig) -> Dict[str, Any]:
    return {
        "rows": int(config.rows),
        "phys_columns": int(config.phys_columns),
        "n_adcs": int(config.n_adcs),
        "adc": _adc_to_meta(config.adc),
        "cell": _cell_to_meta(config.cell),
        "weight_bits": int(config.weight_bits),
        "input_bits": int(config.input_bits),
        "signed_weights": bool(config.signed_weights),
        "signed_inputs": bool(config.signed_inputs),
        "cycle_time_ns": float(config.cycle_time_ns),
        "wl_energy_fj": float(config.wl_energy_fj),
        "peripheral_energy_fj_per_cycle": float(
            config.peripheral_energy_fj_per_cycle
        ),
        "bitline": _bitline_to_meta(config.bitline),
    }


def _macro_config_from_meta(meta: Dict[str, Any]) -> MacroConfig:
    fields = dict(meta)
    fields["adc"] = AdcSpec(**fields["adc"])
    fields["cell"] = _cell_from_meta(fields["cell"])
    fields["bitline"] = _bitline_from_meta(fields["bitline"])
    return MacroConfig(**fields)


def _encoding_to_meta(encoding: Optional[ActivationEncoding]) -> Optional[Dict[str, Any]]:
    # Exact class matches only: a behaviour-overriding *subclass* of a
    # built-in encoding must not serialize (and content-address) as its
    # base class — a warm start would silently restore the wrong
    # arithmetic.
    if encoding is None:
        return None
    if type(encoding) is PulseWidthEncoding:
        return {
            "type": "pulse-width",
            "jitter_sigma_slots": float(encoding.jitter_sigma_slots),
        }
    if type(encoding) is UnaryPulseEncoding:
        return {"type": "unary-pulse"}
    if type(encoding) is BitSerialEncoding:
        return {"type": "bit-serial"}
    raise SnapshotError(
        f"cannot serialize custom activation encoding "
        f"{type(encoding).__name__}; use one of the built-in encodings"
    )


def _encoding_from_meta(meta: Optional[Dict[str, Any]]) -> Optional[ActivationEncoding]:
    if meta is None:
        return None
    kind = meta["type"]
    if kind == "pulse-width":
        return PulseWidthEncoding(jitter_sigma_slots=meta["jitter_sigma_slots"])
    if kind == "unary-pulse":
        return UnaryPulseEncoding()
    if kind == "bit-serial":
        return BitSerialEncoding()
    raise SnapshotVersionError(f"unknown activation encoding kind {kind!r}")


def _runtime_config_to_meta(config: RuntimeConfig) -> Dict[str, Any]:
    return {
        "rom_config": (
            None if config.rom_config is None else _macro_config_to_meta(config.rom_config)
        ),
        "sram_config": (
            None
            if config.sram_config is None
            else _macro_config_to_meta(config.sram_config)
        ),
        "activation_bits": int(config.activation_bits),
        "encoding": _encoding_to_meta(config.encoding),
        "fold_bn": bool(config.fold_bn),
        "assume_signed_input": bool(config.assume_signed_input),
        "backend": config.backend,
        "tune_probe_n": int(config.tune_probe_n),
    }


def _runtime_config_from_meta(meta: Dict[str, Any]) -> RuntimeConfig:
    return RuntimeConfig(
        rom_config=(
            None if meta["rom_config"] is None else _macro_config_from_meta(meta["rom_config"])
        ),
        sram_config=(
            None
            if meta["sram_config"] is None
            else _macro_config_from_meta(meta["sram_config"])
        ),
        activation_bits=meta["activation_bits"],
        encoding=_encoding_from_meta(meta["encoding"]),
        fold_bn=meta["fold_bn"],
        assume_signed_input=meta["assume_signed_input"],
        backend=meta.get("backend"),
        tune_probe_n=int(meta.get("tune_probe_n", 1)),
    )


def _link_to_meta(link: ChipletLinkSpec) -> Dict[str, Any]:
    return {
        "energy_pj_per_bit": float(link.energy_pj_per_bit),
        "bandwidth_gbps_per_pin": float(link.bandwidth_gbps_per_pin),
        "pins_per_link": int(link.pins_per_link),
    }


def _link_from_meta(meta: Dict[str, Any]) -> ChipletLinkSpec:
    return ChipletLinkSpec(**meta)


# ----------------------------------------------------------------------
# Module-tree (de)serialization
# ----------------------------------------------------------------------
class RestoredComposite(nn.Module):
    """Generic container standing in for a serial custom composite.

    Only composites whose dataflow *is* the registration-order child
    chain serialize generically (``plan_forward = nn.plan_serial``, a
    non-overridden forward, or a plain ``Sequential``); composites with
    a real graph (residual adds, grouped diamonds) serialize as their
    registered kind (see :func:`_plan_composites`) so the restored
    module carries the original ``plan_forward``.  ``source_type``
    records the original class name for repr.
    """

    #: The restored dataflow is exactly the serial chain.
    plan_forward = nn.plan_serial

    def __init__(self, source_type: str = "Module"):
        super().__init__()
        self.source_type = source_type

    def forward(self, x):
        for child in self._modules.values():
            x = child(x)
        return x

    def extra_repr(self) -> str:
        return f"restored={self.source_type}"


def _plan_composites() -> Dict[str, type]:
    """Composite kinds with a non-serial ``plan_forward`` the artifact
    format can name.  Restoring one rebuilds the original class (its
    ``plan_forward`` carries the dataflow), so residual and
    depthwise-separable models round-trip with their graphs intact.
    Lazy import: ``repro.models`` must stay importable without the
    runtime package being fully initialized.
    """
    from repro.models.mobilenet import DepthwiseSeparable
    from repro.models.resnet import BasicBlock

    return {
        "basic_block": BasicBlock,
        "depthwise_separable": DepthwiseSeparable,
    }


class _TreeWriter:
    """Walks a module tree into a JSON spec + parameter arrays."""

    def __init__(self):
        self.arrays: Dict[str, np.ndarray] = {}
        self._counter = 0

    def _store_array(self, value: np.ndarray) -> str:
        name = f"p{self._counter}"
        self._counter += 1
        self.arrays[name] = np.asarray(value, dtype=np.float64)
        return name

    def _param(self, param: Optional[nn.Parameter]) -> Optional[Dict[str, Any]]:
        if param is None:
            return None
        return {
            "array": self._store_array(param.data),
            "requires_grad": bool(param.requires_grad),
        }

    def spec(self, module: nn.Module) -> Dict[str, Any]:
        if isinstance(module, ReBranchConv2d):
            return {
                "kind": "rebranch",
                "d": int(module.d),
                "u": int(module.u),
                "trunk": self.spec(module.trunk),
                "compress": self.spec(module.compress),
                "res_conv": self.spec(module.res_conv),
                "decompress": self.spec(module.decompress),
            }
        if isinstance(module, nn.Conv2d):
            return {
                "kind": "conv2d",
                "in_channels": module.in_channels,
                "out_channels": module.out_channels,
                "kernel_size": list(module.kernel_size),
                "stride": list(module.stride),
                "padding": list(module.padding),
                "groups": module.groups,
                "weight": self._param(module.weight),
                "bias": self._param(module.bias),
            }
        if isinstance(module, nn.Linear):
            return {
                "kind": "linear",
                "in_features": module.in_features,
                "out_features": module.out_features,
                "weight": self._param(module.weight),
                "bias": self._param(module.bias),
            }
        if isinstance(module, nn.BatchNorm2d):
            # Never present in a *compiled* artifact (deployment folds BN
            # away), but required so :func:`artifact_key` can address the
            # caller's pre-fold model — the key warm-start flows look up
            # before compiling.
            return {
                "kind": "batchnorm2d",
                "num_features": module.num_features,
                "eps": float(module.eps),
                "momentum": float(module.momentum),
                "weight": self._param(module.weight),
                "bias": self._param(module.bias),
                "running_mean": {"array": self._store_array(module.running_mean)},
                "running_var": {"array": self._store_array(module.running_var)},
            }
        if isinstance(module, nn.LeakyReLU):
            return {"kind": "leaky_relu", "negative_slope": float(module.negative_slope)}
        if isinstance(module, nn.Dropout):
            return {"kind": "dropout", "p": float(module.p)}
        if isinstance(module, (nn.MaxPool2d, nn.AvgPool2d)):
            return {
                "kind": "max_pool" if isinstance(module, nn.MaxPool2d) else "avg_pool",
                "kernel_size": _intpair_meta(module.kernel_size),
                "stride": _intpair_meta(module.stride),
            }
        for kind, cls in _STATELESS_LEAVES.items():
            # Exact class match: a stateless subclass with custom forward
            # must not silently degrade to its base behaviour.
            if type(module) is cls:
                return {"kind": kind}
        for kind, cls in _plan_composites().items():
            # Exact class match: graph composites restore as their real
            # class so the original plan_forward carries the dataflow.
            if type(module) is cls:
                return {
                    "kind": kind,
                    "children": [
                        [name, self.spec(child)]
                        for name, child in module._modules.items()
                    ],
                }
        if isinstance(module, nn.Sequential) or module._modules:
            plan = getattr(type(module), "plan_forward", None)
            if (
                plan is not None
                and plan is not nn.plan_serial
                and not isinstance(module, nn.Sequential)
            ):
                raise SnapshotError(
                    f"cannot serialize composite {type(module).__name__} "
                    f"with a custom plan_forward dataflow; a generic "
                    f"restore would silently degrade it to a serial chain "
                    f"(register the class in snapshot._plan_composites to "
                    f"make it addressable)"
                )
            return {
                "kind": "composite",
                "source_type": type(module).__name__,
                "sequential": isinstance(module, nn.Sequential),
                "children": [
                    [name, self.spec(child)]
                    for name, child in module._modules.items()
                ],
            }
        raise SnapshotError(
            f"cannot serialize module of type {type(module).__name__}; "
            f"the artifact format covers exactly the deployable module set"
        )


_STATELESS_LEAVES = {
    "relu": nn.ReLU,
    "sigmoid": nn.Sigmoid,
    "tanh": nn.Tanh,
    "identity": nn.Identity,
    "flatten": nn.Flatten,
    "global_avg_pool": nn.GlobalAvgPool2d,
}


def _intpair_meta(value):
    if value is None:
        return None
    if isinstance(value, (tuple, list)):
        return list(int(v) for v in value)
    return int(value)


def _intpair_restore(value):
    if isinstance(value, list):
        return tuple(value)
    return value


def _restore_param(meta: Optional[Dict[str, Any]], arrays) -> Optional[nn.Parameter]:
    if meta is None:
        return None
    data = np.asarray(arrays[meta["array"]], dtype=np.float64)
    return nn.Parameter(data, requires_grad=meta["requires_grad"])


def _restore_module(spec: Dict[str, Any], arrays) -> nn.Module:
    kind = spec["kind"]
    if kind == "conv2d":
        conv = nn.Conv2d.__new__(nn.Conv2d)
        nn.Module.__init__(conv)
        conv.in_channels = spec["in_channels"]
        conv.out_channels = spec["out_channels"]
        conv.kernel_size = tuple(spec["kernel_size"])
        conv.stride = tuple(spec["stride"])
        conv.padding = tuple(spec["padding"])
        conv.groups = spec["groups"]
        conv.weight = _restore_param(spec["weight"], arrays)
        conv.bias = _restore_param(spec["bias"], arrays)
        return conv
    if kind == "linear":
        linear = nn.Linear.__new__(nn.Linear)
        nn.Module.__init__(linear)
        linear.in_features = spec["in_features"]
        linear.out_features = spec["out_features"]
        linear.weight = _restore_param(spec["weight"], arrays)
        linear.bias = _restore_param(spec["bias"], arrays)
        return linear
    if kind == "rebranch":
        branch = ReBranchConv2d.__new__(ReBranchConv2d)
        nn.Module.__init__(branch)
        trunk = _restore_module(spec["trunk"], arrays)
        branch.d = spec["d"]
        branch.u = spec["u"]
        branch.in_channels = trunk.in_channels
        branch.out_channels = trunk.out_channels
        branch.kernel_size = trunk.kernel_size
        branch.stride = trunk.stride
        branch.padding = trunk.padding
        branch.trunk = trunk
        branch.compress = _restore_module(spec["compress"], arrays)
        branch.res_conv = _restore_module(spec["res_conv"], arrays)
        branch.decompress = _restore_module(spec["decompress"], arrays)
        return branch
    if kind == "batchnorm2d":
        bn = nn.BatchNorm2d(
            spec["num_features"], eps=spec["eps"], momentum=spec["momentum"]
        )
        bn.weight = _restore_param(spec["weight"], arrays)
        bn.bias = _restore_param(spec["bias"], arrays)
        bn._update_buffer(
            "running_mean",
            np.asarray(arrays[spec["running_mean"]["array"]], dtype=np.float64),
        )
        bn._update_buffer(
            "running_var",
            np.asarray(arrays[spec["running_var"]["array"]], dtype=np.float64),
        )
        return bn
    if kind == "leaky_relu":
        return nn.LeakyReLU(negative_slope=spec["negative_slope"])
    if kind == "dropout":
        return nn.Dropout(p=spec["p"])
    if kind == "max_pool":
        return nn.MaxPool2d(
            _intpair_restore(spec["kernel_size"]), _intpair_restore(spec["stride"])
        )
    if kind == "avg_pool":
        return nn.AvgPool2d(
            _intpair_restore(spec["kernel_size"]), _intpair_restore(spec["stride"])
        )
    if kind in _STATELESS_LEAVES:
        return _STATELESS_LEAVES[kind]()
    plan_composites = _plan_composites()
    if kind in plan_composites:
        cls = plan_composites[kind]
        module = cls.__new__(cls)
        nn.Module.__init__(module)
        for name, child_spec in spec["children"]:
            setattr(module, name, _restore_module(child_spec, arrays))
        return module
    if kind == "composite":
        if spec["sequential"]:
            module: nn.Module = nn.Sequential()
        else:
            module = RestoredComposite(spec["source_type"])
        for name, child_spec in spec["children"]:
            setattr(module, name, _restore_module(child_spec, arrays))
        return module
    raise SnapshotVersionError(f"unknown module kind {kind!r} in artifact")


# ----------------------------------------------------------------------
# Engine (de)serialization
# ----------------------------------------------------------------------
def _codes_dtype(weight_bits: int):
    if weight_bits <= 8:
        return np.int8
    if weight_bits <= 16:
        return np.int16
    return np.int32


def _plane_weights_for(bits: int, signed: bool) -> np.ndarray:
    weights = np.array([float(1 << k) for k in range(bits)])
    if signed:
        weights[bits - 1] = -float(1 << (bits - 1))
    return weights


_POPCOUNT_8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.int64)


def _stored_bits_matrix(codes: np.ndarray, weight_bits: int) -> np.ndarray:
    """Per-element count of stored '1' bits, two's-complement
    reinterpreted over ``weight_bits`` exactly like ``_bit_planes``.

    Summing a tile's slice of this matrix over its columns reproduces
    the programmed ``weight_planes.sum(axis=(0, 2))`` row totals.
    """
    unsigned = codes & ((1 << weight_bits) - 1)
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(unsigned)
    counts = _POPCOUNT_8[unsigned & 0xFF]
    for shift in range(8, weight_bits, 8):
        counts = counts + _POPCOUNT_8[(unsigned >> shift) & 0xFF]
    return counts


def _tile_grid(shape: Tuple[int, int], config: MacroConfig) -> List[Tuple[int, int, int, int]]:
    """The deterministic tile bounds :class:`CimTiledMatmul` lays out."""
    rows, cols = shape
    bounds = []
    for r0 in range(0, rows, config.rows):
        r1 = min(r0 + config.rows, rows)
        for c0 in range(0, cols, config.logical_columns):
            c1 = min(c0 + config.logical_columns, cols)
            bounds.append((r0, r1, c0, c1))
    return bounds


def _linear_of(engine) -> ProgrammedLinear:
    return engine.linear if isinstance(engine, ProgrammedConv) else engine


def serialize_engine(engine, tag: str, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Capture one programmed engine's state into ``arrays`` + meta.

    Stores the quantized weight codes, per-channel scales, programming
    config, and — when the fast noise-free kernel is programmed — each
    tile group's float32 weight planes bit-packed (64x smaller than the
    float64 planes; exact, since plane values are 0/1).
    """
    linear = _linear_of(engine)
    meta: Dict[str, Any] = {
        "tag": tag,
        "kind": "conv" if isinstance(engine, ProgrammedConv) else "linear",
        "signed_inputs": bool(linear.signed_inputs),
        "activation_bits": int(linear.activation_bits),
        "config": _macro_config_to_meta(linear.config),
    }
    if isinstance(engine, ProgrammedConv):
        meta["stride"] = int(engine.stride)
        meta["padding"] = int(engine.padding)
        meta["weight_shape"] = list(engine.weight_shape)
    arrays[f"{tag}_codes"] = linear.w_codes.astype(
        _codes_dtype(linear.config.weight_bits)
    )
    arrays[f"{tag}_scale"] = np.asarray(linear.w_scale, dtype=np.float64)
    kernel = linear._kernel
    meta["kernel_groups"] = 0 if kernel is None else len(kernel._groups)
    # Kernel-backend provenance (format v3): the resolved winner, the
    # caller's request (part of the engine's cache identity), and
    # whether the winner came from the autotuner — a warm start rebuilds
    # the tuned kernel from these without re-benchmarking anything.
    meta["backend"] = None if kernel is None else type(kernel).backend_name
    meta["backend_request"] = getattr(linear, "backend_request", None)
    meta["tuned"] = bool(getattr(linear, "tuned", False))
    if kernel is not None:
        for g, group in enumerate(kernel._groups):
            arrays[f"{tag}_g{g}"] = np.packbits(group.planes32.astype(np.uint8))
    return meta


def _restore_tiled(codes_t: np.ndarray, run_config: MacroConfig) -> CimTiledMatmul:
    """Rebuild the tiled engine from integer codes without re-deriving
    bit planes (restored macros compute them lazily on first reference
    use — e.g. under bit-line noise — and bitwise identically)."""
    engine = CimTiledMatmul.__new__(CimTiledMatmul)
    engine.config = run_config
    engine.shape = codes_t.shape
    tiles: List[_Tile] = []
    plane_weights = _plane_weights_for(run_config.weight_bits, run_config.signed_weights)
    # One construction-time generator shared by every tile, exactly like
    # CimTiledMatmul.__init__; the runtime always passes an execution
    # rng, so this is only a fallback for direct macro use.
    rng = np.random.default_rng()
    for r0, r1, c0, c1 in _tile_grid(codes_t.shape, run_config):
        macro = CimMacro.__new__(CimMacro)
        macro.config = run_config
        macro._rng = rng
        macro._programmed = True
        macro.rows_used = r1 - r0
        macro.cols_used = c1 - c0
        macro.weights = codes_t[r0:r1, c0:c1]
        macro._plane_weights = plane_weights
        tiles.append(_Tile(macro, r0, r1, c0, c1))
    engine.tiles = tiles
    return engine


def _restore_kernel(
    engine: CimTiledMatmul, tag: str, n_groups: int, arrays, bits_t: np.ndarray
) -> TiledBitSerialKernel:
    """Rebuild the fused kernel from bit-packed planes (no recompute).

    ``bits_t`` is the per-element stored-bit count matrix in the
    engine's ``(rows, cols)`` orientation, computed once per engine.
    """
    config = engine.config
    wb = config.weight_bits
    grouped: Dict[Tuple[int, int], List[_Tile]] = {}
    for tile in engine.tiles:
        grouped.setdefault((tile.row_start, tile.row_stop), []).append(tile)
    if len(grouped) != n_groups:
        raise SnapshotCorruptError(
            f"artifact records {n_groups} kernel groups but the tile grid "
            f"produces {len(grouped)}"
        )
    groups: List[_TileGroup] = []
    for g, ((row_start, row_stop), tiles) in enumerate(grouped.items()):
        rows = row_stop - row_start
        widths = [wb * tile.macro.cols_used for tile in tiles]
        total = sum(widths)
        packed = arrays[f"{tag}_g{g}"]
        if packed.size * 8 < total * rows:
            raise SnapshotCorruptError(
                f"kernel group {g} of {tag!r} holds {packed.size * 8} plane "
                f"bits, expected {total * rows}"
            )
        planes = np.unpackbits(packed, count=total * rows)
        group = _TileGroup.__new__(_TileGroup)
        group.row_start = row_start
        group.row_stop = row_stop
        group.tiles = tiles
        group.planes32 = planes.reshape(total, rows).astype(np.float32)
        group.offsets = np.cumsum([0] + widths)
        domain = np.arange(rows + 1, dtype=np.float64)
        observed = config.bitline.observe(domain, None)
        group.lut = config.adc.quantize_counts(observed, float(rows))
        group.lut_is_identity = bool(np.array_equal(group.lut, domain))
        group.idx_dtype = np.uint8 if rows <= 255 else np.int64
        # Per-row ON-cell totals: exact integers whichever order they are
        # summed in, so this popcount over the codes equals the
        # programmed float64 plane reduction bitwise.
        group.plane_row_sums = [
            bits_t[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop].sum(
                axis=1, dtype=np.float64
            )
            for tile in tiles
        ]
        groups.append(group)
    kernel = TiledBitSerialKernel.__new__(TiledBitSerialKernel)
    kernel.engine = engine
    kernel._groups = groups
    kernel._path_cache = {}
    kernel._fused_cache = {}
    return kernel


def restore_engine(meta: Dict[str, Any], arrays):
    """Inverse of :func:`serialize_engine` — a bitwise-equal engine."""
    config = _macro_config_from_meta(meta["config"])
    activation_bits = meta["activation_bits"]
    signed_inputs = meta["signed_inputs"]
    codes = np.asarray(arrays[f"{meta['tag']}_codes"], dtype=np.int64)

    linear = ProgrammedLinear.__new__(ProgrammedLinear)
    linear.config = config
    linear.activation_bits = int(activation_bits)
    linear.signed_inputs = bool(signed_inputs)
    linear.out_features, linear.in_features = codes.shape
    linear.w_codes = codes
    # Force a copy off the container mapping: engines must be fully
    # materialized (the codes copy above and the unpacked planes already
    # are), so a live engine never keeps pages of the artifact file
    # mapped — overwriting an engine artifact cannot crash a server
    # that restored from it.
    linear.w_scale = np.array(arrays[f"{meta['tag']}_scale"], dtype=np.float64)
    # The exact run-config derivation ProgrammedLinear.__init__ performs.
    bitline = replace(config.bitline) if config.bitline is not None else None
    linear.run_config = replace(
        config,
        input_bits=linear.activation_bits,
        signed_weights=True,
        signed_inputs=linear.signed_inputs,
        bitline=bitline,
    )
    linear.engine = _restore_tiled(codes.T, linear.run_config)
    n_groups = meta["kernel_groups"]
    supported = TiledBitSerialKernel.supported(linear.run_config)
    if n_groups and not supported:
        raise SnapshotCorruptError(
            "artifact stores fused-kernel planes for a configuration the "
            "fast kernel does not support"
        )
    linear._kernel = (
        _restore_kernel(
            linear.engine,
            meta["tag"],
            n_groups,
            arrays,
            _stored_bits_matrix(codes, linear.run_config.weight_bits).T,
        )
        if n_groups
        else None
    )
    if supported and not n_groups:
        # A noise-free engine saved without kernel planes (never the
        # writer's behaviour) still restores correctly, just colder.
        linear._kernel = TiledBitSerialKernel(linear.engine)

    # Re-adopt the recorded backend winner (format v3).  The restored
    # reference kernel's tile groups are shared, so adoption only
    # re-derives the winner's own layout (e.g. packed popcount words) —
    # never a re-benchmark.  A winner this process cannot build (say,
    # popcount without np.bitwise_count) degrades to the reference
    # kernel; serving stays bitwise identical either way.
    backend = meta.get("backend") or DEFAULT_BACKEND
    tuned = bool(meta.get("tuned", False))
    if linear._kernel is not None and backend != DEFAULT_BACKEND:
        try:
            cls = get_backend(backend)
        except KeyError:
            cls = None
        if cls is not None and cls.supported(linear.run_config):
            linear._kernel = cls.adopt(linear._kernel)
        else:
            backend, tuned = DEFAULT_BACKEND, False
    linear.backend_request = meta.get("backend_request")
    linear.kernel_backend = backend if linear._kernel is not None else None
    linear.tuned = tuned if linear._kernel is not None else False
    linear.tune_report = None

    if meta["kind"] == "linear":
        return linear
    conv = ProgrammedConv.__new__(ProgrammedConv)
    shape = tuple(meta["weight_shape"])
    conv.out_channels, conv.in_channels, conv.kh, conv.kw = shape
    conv.stride = int(meta["stride"])
    conv.padding = int(meta["padding"])
    conv.linear = linear
    return conv


def _engine_cache_key(meta: Dict[str, Any], layer_id: str, fingerprint: str) -> EngineKey:
    config = _macro_config_from_meta(meta["config"])
    # The *request* (None / "auto" / a pinned name) is the cache
    # identity, not the resolved winner — a runtime asking for "auto"
    # must hit the snapshot-seeded entry that was compiled with "auto".
    backend = meta.get("backend_request")
    if meta["kind"] == "conv":
        return conv_engine_key(
            None,
            meta["stride"],
            meta["padding"],
            config,
            meta["activation_bits"],
            meta["signed_inputs"],
            layer_id,
            fingerprint,
            backend=backend,
        )
    return linear_engine_key(
        None,
        config,
        meta["activation_bits"],
        meta["signed_inputs"],
        layer_id,
        fingerprint,
        backend=backend,
    )


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def _hash_spec(digest, spec: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> None:
    """Feed the architecture spec and every parameter's value into the
    digest (array refs in the spec are replaced by content hashes)."""

    def canonical(node):
        if isinstance(node, dict):
            out = {}
            for key, value in sorted(node.items()):
                if key == "array":
                    arr = np.ascontiguousarray(arrays[value])
                    out[key] = hashlib.sha1(
                        arr.tobytes() + repr(arr.shape).encode()
                    ).hexdigest()
                else:
                    out[key] = canonical(value)
            return out
        if isinstance(node, list):
            return [canonical(item) for item in node]
        return node

    digest.update(json.dumps(canonical(spec), sort_keys=True).encode())


def artifact_key(
    model: nn.Module,
    config: Optional[RuntimeConfig] = None,
    *,
    shards: Optional[int] = None,
    link: Optional[ChipletLinkSpec] = None,
    input_shape: Optional[Tuple[int, ...]] = None,
) -> str:
    """Content address of ``(model weights, runtime config, shard request)``.

    Deterministic across processes: the digest covers the format
    version, the architecture spec, every parameter's exact float bytes
    and ``requires_grad`` flag (placement-relevant), the full
    :class:`RuntimeConfig`, and the shard request (count, link spec,
    balance shape).  Any change to any of them yields a new key — a
    stale artifact is *unreachable*, never silently loaded.

    When ``config.fold_bn`` is set, the key is computed on the
    *canonical* (BN-folded) form of the model — folded on a private
    copy, the caller's tree is never touched — so the key of a model
    as registered (pre-fold) equals the key of the compiled image
    :func:`save` persists (``compile`` folds in place).
    """
    config = config if config is not None else RuntimeConfig()
    if config.fold_bn and any(
        isinstance(module, nn.BatchNorm2d) for module in model.modules()
    ):
        from repro.runtime.programming import fold_batchnorm

        # Round-trip through the spec: a cheap deep copy of exactly the
        # serializable tree, preserving names and requires_grad flags.
        proto = _TreeWriter()
        model = _restore_module(proto.spec(model), proto.arrays)
        fold_batchnorm(model)
    writer = _TreeWriter()
    spec = writer.spec(model)
    digest = hashlib.sha256()
    digest.update(f"{FORMAT}:{VERSION}".encode())
    _hash_spec(digest, spec, writer.arrays)
    digest.update(json.dumps(_runtime_config_to_meta(config), sort_keys=True).encode())
    shard_meta = {
        "shards": None if shards is None else int(shards),
        "link": None if link is None else _link_to_meta(link),
        "input_shape": None if input_shape is None else list(input_shape),
    }
    digest.update(json.dumps(shard_meta, sort_keys=True).encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ArtifactStore:
    """Content-addressed artifact directory.

    Layout: ``<root>/models/<key>.rcma`` for compiled-model artifacts
    and ``<root>/engines/<digest>.rcma`` for the single-engine artifacts
    the :class:`~repro.runtime.cache.EngineCache` disk tier keeps.
    Writes are atomic (write-temp + rename), so a crashed writer can
    never leave a half-written artifact under a valid key.

    Container layout (one ``.rcma`` file)::

        MAGIC (6 bytes) | header length (8 bytes LE) | JSON header
        | zero padding to a 64-byte boundary | array data section

    The header carries the format version, the artifact metadata, and
    every array's dtype/shape/offset; the data section is the arrays'
    raw C-order bytes at 64-byte-aligned offsets.  The loader maps the
    data section copy-on-write, so reading an artifact touches only the
    pages the warm start actually needs (the engine state), while the
    float64 master weights fault in lazily on first use — and stay
    writable, because pages copy on write.  The header records a SHA-256
    of the data section; :meth:`verify` (and ``load(verify=True)``)
    checks it, the default fast path relies on the declared sizes only
    (truncation and header damage are always detected).
    """

    def __init__(self, root):
        self.root = Path(root)
        self._models = self.root / "models"
        self._engines = self.root / "engines"
        self._models.mkdir(parents=True, exist_ok=True)
        self._engines.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------
    def model_path(self, key: str) -> Path:
        return self._models / f"{key}.rcma"

    def engine_path(self, key: EngineKey) -> Path:
        digest = hashlib.sha256(
            repr((key.layer_id, key.weight_hash, key.config_key)).encode()
        ).hexdigest()
        return self._engines / f"{digest}.rcma"

    def __contains__(self, key: str) -> bool:
        return self.model_path(key).exists()

    def keys(self) -> List[str]:
        return sorted(path.stem for path in self._models.glob("*.rcma"))

    def engine_count(self) -> int:
        return sum(1 for _ in self._engines.glob("*.rcma"))

    # -- container i/o -------------------------------------------------
    @staticmethod
    def _write(path: Path, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> None:
        index: Dict[str, Any] = {}
        chunks: List[np.ndarray] = []
        offset = 0
        digest = hashlib.sha256()
        pad_cache = b"\x00" * _ALIGN
        payload: List[bytes] = []
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            pad = (-offset) % _ALIGN
            if pad:
                payload.append(pad_cache[:pad])
                digest.update(pad_cache[:pad])
                offset += pad
            data = array.tobytes()
            index[name] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(data),
            }
            payload.append(data)
            digest.update(data)
            offset += len(data)
            chunks.append(array)
        header = json.dumps(
            {
                "format": FORMAT,
                "version": VERSION,
                "meta": meta,
                "arrays": index,
                "data_size": offset,
                "data_sha256": digest.hexdigest(),
            }
        ).encode("utf-8")
        prefix = MAGIC + len(header).to_bytes(8, "little") + header
        data_start = -(-len(prefix) // _ALIGN) * _ALIGN

        fd, tmp = tempfile.mkstemp(suffix=".rcma.tmp", dir=str(path.parent))
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(prefix)
                handle.write(b"\x00" * (data_start - len(prefix)))
                for blob in payload:
                    handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _read_header(path: Path) -> Tuple[Dict[str, Any], int]:
        try:
            size = path.stat().st_size
            with open(path, "rb") as handle:
                magic = handle.read(len(MAGIC))
                if magic != MAGIC:
                    raise SnapshotCorruptError(
                        f"artifact {path.name} is not an artifact container "
                        f"(bad magic)"
                    )
                raw_len = handle.read(8)
                if len(raw_len) != 8:
                    raise SnapshotCorruptError(f"artifact {path.name} is truncated")
                header_len = int.from_bytes(raw_len, "little")
                if header_len <= 0 or len(MAGIC) + 8 + header_len > size:
                    raise SnapshotCorruptError(
                        f"artifact {path.name} is truncated (header extends "
                        f"past end of file)"
                    )
                raw_header = handle.read(header_len)
        except FileNotFoundError:
            raise SnapshotKeyError(f"no artifact at {path}") from None
        except OSError as error:
            raise SnapshotCorruptError(
                f"unreadable artifact {path.name}: {error}"
            ) from error
        if len(raw_header) != header_len:
            raise SnapshotCorruptError(f"artifact {path.name} is truncated")
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotCorruptError(
                f"artifact {path.name} header is not valid JSON: {error}"
            ) from error
        if not isinstance(header, dict) or header.get("format") != FORMAT:
            raise SnapshotCorruptError(
                f"artifact {path.name} has format "
                f"{header.get('format') if isinstance(header, dict) else header!r}, "
                f"expected {FORMAT!r}"
            )
        if header.get("version") != VERSION:
            raise SnapshotVersionError(
                f"artifact {path.name} is format version {header.get('version')!r}; "
                f"this runtime reads version {VERSION}"
            )
        data_start = -(-(len(MAGIC) + 8 + header_len) // _ALIGN) * _ALIGN
        if data_start + header.get("data_size", 0) != size:
            raise SnapshotCorruptError(
                f"artifact {path.name} is truncated: declares "
                f"{header.get('data_size', 0)} data bytes at offset "
                f"{data_start}, file holds {size}"
            )
        return header, data_start

    @classmethod
    def _read(cls, path: Path) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        header, data_start = cls._read_header(path)
        try:
            blob = (
                np.memmap(path, dtype=np.uint8, mode="c", offset=data_start)
                if header["data_size"]
                else np.empty(0, dtype=np.uint8)
            )
            arrays: Dict[str, np.ndarray] = {}
            for name, entry in header["arrays"].items():
                start, nbytes = entry["offset"], entry["nbytes"]
                view = blob[start : start + nbytes].view(entry["dtype"])
                arrays[name] = view.reshape(tuple(entry["shape"]))
        except (KeyError, TypeError, ValueError, OSError) as error:
            raise SnapshotCorruptError(
                f"artifact {path.name} array index is malformed: "
                f"{type(error).__name__}: {error}"
            ) from error
        return header["meta"], arrays

    @classmethod
    def _verify_container(cls, path: Path) -> None:
        """Full-content check: data section hashes to the header digest."""
        header, data_start = cls._read_header(path)
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            handle.seek(data_start)
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        if digest.hexdigest() != header.get("data_sha256"):
            raise SnapshotCorruptError(
                f"artifact {path.name} data section does not match its "
                f"recorded checksum"
            )

    def write_model(self, key: str, meta: Dict[str, Any], arrays) -> Path:
        path = self.model_path(key)
        self._write(path, meta, arrays)
        return path

    def read_model(self, key: str) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        path = self.model_path(key)
        if not path.exists():
            raise SnapshotKeyError(f"store holds no artifact for key {key!r}")
        return self._read(path)

    def verify(self, key: str) -> None:
        """Checksum the full artifact; raises a typed error if damaged."""
        path = self.model_path(key)
        if not path.exists():
            raise SnapshotKeyError(f"store holds no artifact for key {key!r}")
        self._verify_container(path)

    def meta(self, key: str) -> Dict[str, Any]:
        """The parsed JSON header of one artifact (for inspection/CLIs)."""
        meta, _ = self.read_model(key)
        return meta

    # -- engine tier (used by EngineCache's disk second tier) ----------
    def write_engine(self, key: EngineKey, engine) -> Path:
        arrays: Dict[str, np.ndarray] = {}
        meta = {
            "payload": "engine",
            "layer_id": key.layer_id,
            "weight_hash": key.weight_hash,
            "engine": serialize_engine(engine, "e", arrays),
        }
        path = self.engine_path(key)
        self._write(path, meta, arrays)
        return path

    def read_engine(self, key: EngineKey):
        path = self.engine_path(key)
        if not path.exists():
            raise SnapshotKeyError(f"store holds no engine artifact for {key}")
        meta, arrays = self._read(path)
        if meta.get("payload") != "engine":
            raise SnapshotCorruptError(
                f"artifact {path.name} is not an engine artifact"
            )
        if meta.get("weight_hash") != key.weight_hash:
            raise SnapshotStaleError(
                f"engine artifact {path.name} was programmed for weight hash "
                f"{meta.get('weight_hash')!r}, requested {key.weight_hash!r}"
            )
        return restore_engine(meta["engine"], arrays)


# ----------------------------------------------------------------------
# save / load
# ----------------------------------------------------------------------
_log = get_logger("runtime.snapshot")


def save(
    compiled,
    store: ArtifactStore,
    *,
    key: Optional[str] = None,
    created_at: Optional[float] = None,
) -> str:
    """Serialize ``compiled`` (a :class:`CompiledModel` or
    :class:`ShardedModel`) into ``store``; returns the artifact key.

    ``created_at`` stamps the header (defaults to the wall clock).  It
    is the *only* nondeterministic byte in an artifact — pass a fixed
    value and two saves of the same compiled model are byte-identical,
    which is what reproducible-build and artifact-diffing flows want.

    ``key`` defaults to :func:`artifact_key` of the compiled model's
    weights, config and shard layout (``fold_bn`` models hash to their
    canonical folded form, so the default key matches what warm-start
    flows compute on the pre-fold model).  One caveat: a sharded model
    cut with ``shard_input_shape`` no longer knows that shape, so the
    default key omits it — warm-start flows that pass ``input_shape``
    (the registry does) also pass ``key=`` here, as should you when
    both sides must agree.  Raises :class:`SnapshotStaleError` when the
    model's live weights no longer match its programmed engines
    (mutate-then-save without ``ensure_fresh()``), because such an
    artifact could never satisfy the bitwise-identity contract.
    """
    sharded = compiled if isinstance(compiled, ShardedModel) else None
    base: CompiledModel = sharded.compiled if sharded is not None else compiled

    writer = _TreeWriter()
    spec = writer.spec(base.model)
    arrays = writer.arrays

    from repro.runtime.cache import weight_fingerprint

    engines_meta: List[Dict[str, Any]] = []
    fingerprints: Dict[str, str] = {}
    for slot in base._slots:
        live = weight_fingerprint(slot.weight_fn())
        if live != slot.fingerprint:
            raise SnapshotStaleError(
                f"layer {slot.layer_id!r} weights changed since programming; "
                f"call ensure_fresh() (and re-run) before saving"
            )
        fingerprints[slot.layer_id] = slot.fingerprint
        # Guarantee the predicted variant exists even if the slot was
        # never executed (engine_for is a no-op when already programmed).
        slot.engine_for(slot.predicted_signed)
        for (signed, _), engine in slot._engines.items():
            tag = f"e{len(engines_meta)}"
            meta = serialize_engine(engine, tag, arrays)
            meta["layer_id"] = slot.layer_id
            engines_meta.append(meta)

    meta: Dict[str, Any] = {
        "payload": "model",
        "created_at": float(created_at) if created_at is not None else time.time(),
        "runtime_config": _runtime_config_to_meta(base.config),
        "module_tree": spec,
        "fingerprints": fingerprints,
        "engines": engines_meta,
        "n_weight_layers": base.n_weight_layers,
        # The realized DAG topology (node names, op kinds, input edges,
        # output index).  load() rebuilds the plan from the module tree
        # and then checks it against this record, so a restore can never
        # silently execute a different graph than the one saved.
        "plan": base.plan_spec(),
    }
    if sharded is not None:
        meta["shards"] = {
            "n_shards": sharded.plan.n_shards,
            "link": _link_to_meta(sharded.link),
            "segments": [
                {
                    "index": seg.index,
                    "step_indices": list(seg.step_indices),
                    "layer_ids": list(seg.layer_ids),
                    "weight_bits": float(seg.weight_bits),
                    "macs": float(seg.macs),
                    "cost": float(seg.cost),
                }
                for seg in sharded.plan.segments
            ],
        }
    else:
        meta["shards"] = None

    if key is None:
        key = artifact_key(
            base.model,
            base.config,
            shards=None if sharded is None else sharded.plan.n_shards,
            link=None if sharded is None else sharded.link,
        )
    meta["key"] = key
    with trace.maybe_span(
        "snapshot_save", "snapshot", key=key, engines=len(engines_meta)
    ):
        store.write_model(key, meta, arrays)
    _log.debug(
        "snapshot %s: saved %d engines, %d weight layers",
        key, len(engines_meta), base.n_weight_layers,
    )
    return key


def load(
    store: ArtifactStore,
    key: str,
    *,
    cache: Optional[EngineCache] = None,
    rng: Optional[np.random.Generator] = None,
    verify: bool = False,
):
    """Restore the artifact under ``key`` into an executable model.

    Returns a :class:`CompiledModel` (or :class:`ShardedModel` for a
    sharded artifact) whose outputs are bitwise identical to compiling
    the stored weights from scratch — pinned differentially by
    ``tests/test_snapshot.py``.  The restored engines are seeded into
    ``cache`` (default: the process-wide engine cache), so subsequent
    compilations of the same weights share them.

    The fast default trusts the artifact's recorded programming
    fingerprints (the content key and the container's declared sizes
    already pin what the file *is*).  ``verify=True`` additionally
    checksums the full data section and re-hashes every restored weight
    tensor against the recorded fingerprints — the audit path.

    Raises :class:`SnapshotKeyError` / :class:`SnapshotCorruptError` /
    :class:`SnapshotVersionError` for missing / damaged / incompatible
    artifacts, and :class:`SnapshotStaleError` when (under ``verify``)
    the artifact's stored weights do not hash to the fingerprints its
    engines were programmed under.
    """
    with trace.maybe_span(
        "snapshot_load", "snapshot", key=key, verify=verify
    ):
        restored = _load_impl(store, key, cache=cache, rng=rng, verify=verify)
    _log.debug("snapshot %s: restored %s", key, type(restored).__name__)
    return restored


def _load_impl(
    store: ArtifactStore,
    key: str,
    *,
    cache: Optional[EngineCache] = None,
    rng: Optional[np.random.Generator] = None,
    verify: bool = False,
):
    if verify:
        store.verify(key)
    meta, arrays = store.read_model(key)
    if meta.get("payload") != "model":
        raise SnapshotCorruptError(f"artifact {key!r} is not a model artifact")
    try:
        model = _restore_module(meta["module_tree"], arrays)
        config = _runtime_config_from_meta(meta["runtime_config"])
        engines = [
            (entry, restore_engine(entry, arrays)) for entry in meta["engines"]
        ]
        fingerprints = dict(meta["fingerprints"])
    except (KeyError, ValueError, TypeError) as error:
        raise SnapshotCorruptError(
            f"artifact {key!r} is internally inconsistent: "
            f"{type(error).__name__}: {error}"
        ) from error

    target = resolve_cache(cache)
    # Always build the plan against a private, right-sized staging
    # cache: the target may be too small to hold every seeded engine,
    # or shared with concurrent compilations that could evict them
    # mid-build — either would make the identity check below misfire
    # on a perfectly valid artifact.
    staging = EngineCache(capacity=max(len(engines), 1))
    seeded: Dict[int, str] = {}
    staged: List[Tuple[EngineKey, Any]] = []
    for entry, engine in engines:
        layer_id = entry["layer_id"]
        fingerprint = fingerprints.get(layer_id)
        if fingerprint is None:
            raise SnapshotCorruptError(
                f"artifact {key!r} holds an engine for unknown layer "
                f"{layer_id!r}"
            )
        engine_key = _engine_cache_key(entry, layer_id, fingerprint)
        staging.put(engine_key, engine)
        staged.append((engine_key, engine))
        seeded[id(engine)] = layer_id

    compiled = _compile(
        model,
        config,
        cache=staging,
        rng=rng,
        # verify: re-hash every restored weight tensor instead of
        # trusting the recorded fingerprints; a mismatch makes the slot
        # miss the seeded cache and trip the identity check below.
        fingerprints=None if verify else fingerprints,
    )
    # Share the restored engines with the caller's cache (best effort —
    # its LRU policy applies; the compiled model's slots hold strong
    # references either way), and point the compiled model at it so any
    # later programming (weight refresh, a batch defying the signedness
    # prediction) shares engines process-wide, not with the staging
    # cache.
    for engine_key, engine in staged:
        target.put(engine_key, engine)
    compiled.cache = target
    for slot in compiled._slots:
        slot.cache = target
    # Every slot's engines must be the seeded objects: a slot that
    # missed the cache programmed from scratch, i.e. its (possibly
    # re-hashed) weights do not match the fingerprints the artifact's
    # engines were saved under.
    for slot in compiled._slots:
        for engine in slot._engines.values():
            if id(engine) not in seeded:
                raise SnapshotStaleError(
                    f"artifact {key!r}: stored weights for layer "
                    f"{slot.layer_id!r} do not match the fingerprint its "
                    f"programmed engines were saved under"
                )
    # The plan rebuilt over the restored tree must realize the exact
    # DAG topology the artifact records — a divergence means the tree
    # and the saved graph no longer describe the same execution.
    recorded_plan = meta.get("plan")
    if recorded_plan is not None and compiled.plan_spec() != recorded_plan:
        raise SnapshotCorruptError(
            f"artifact {key!r}: the plan rebuilt from the stored module "
            f"tree does not match the recorded graph topology"
        )

    shard_meta = meta.get("shards")
    if shard_meta is None:
        return compiled
    try:
        segments = tuple(
            ShardSegment(
                index=seg["index"],
                step_indices=tuple(seg["step_indices"]),
                layer_ids=tuple(seg["layer_ids"]),
                weight_bits=seg["weight_bits"],
                macs=seg["macs"],
                cost=seg["cost"],
            )
            for seg in shard_meta["segments"]
        )
        plan = ShardPlan(n_shards=shard_meta["n_shards"], segments=segments)
        link = _link_from_meta(shard_meta["link"])
        n_steps = len(compiled._steps)
        covered = sorted(i for seg in segments for i in seg.step_indices)
        if covered != list(range(n_steps)):
            raise SnapshotCorruptError(
                f"artifact {key!r}: shard plan covers steps {covered}, "
                f"plan has {n_steps}"
            )
        return _shard(compiled, plan.n_shards, link=link, plan=plan)
    except (KeyError, TypeError) as error:
        raise SnapshotCorruptError(
            f"artifact {key!r} shard section is malformed: "
            f"{type(error).__name__}: {error}"
        ) from error
