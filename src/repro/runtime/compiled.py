"""Compile-once / execute-many deployment runtime.

:func:`compile` separates what the seed library interleaved on every
forward call:

* **Programming** (once per model): validate the module graph, decide
  ROM/SRAM placement per layer, quantize weights, and build the tiled
  macro engines — shared through an LRU
  :class:`~repro.runtime.cache.EngineCache` keyed by
  ``(layer id, weight hash, config)`` so repeated and concurrent
  deployments of the same weights reuse programmed macros.
* **Execution** (per batch): stream activation batches through the
  cached engines, accumulating :class:`~repro.cim.macro.MacroStats`
  per run (and per :class:`~repro.runtime.session.ExecutionSession`)
  instead of mutating state on the model.

The execution plan is a **DAG IR**: a list of :class:`_PlanNode` whose
``inputs`` are explicit edges to earlier nodes (``-1`` is the model
input), executed in fixed topological order — the order the plan
builder created them, i.e. module-registration / ``plan_forward``
declaration order.  Fan-out (a tensor consumed by several nodes, e.g.
a residual shortcut) and fan-in (:class:`_AddStep`) are first-class,
intermediate buffers are refcounted and freed after their last
consumer, and the fixed order keeps bit-line-noise RNG draws
deterministic and bitwise identical to the (equally DAG-aware)
reference walker in :mod:`repro.runtime.reference`.

Composites declare their dataflow through the ``plan_forward(builder,
x)`` protocol (mirroring the ``profile_forward`` precedent): the
builder hands the composite opaque :class:`PlanHandle` values and the
composite wires children (``builder.child``) and fan-in ops
(``builder.add``).  Serial-chain composites can simply set
``plan_forward = nn.plan_serial``.  A composite that overrides
``forward`` *without* declaring a plan raises a typed
:class:`~repro.runtime.errors.UnsupportedModuleError` at compile time —
never the silent child-chaining that used to defer failure to a
mid-run reshape error (or silently wrong outputs).

The compiled path is bitwise identical to the seed per-call functional
path at a fixed RNG seed — pinned by ``tests/test_runtime.py`` against
:func:`repro.runtime.reference.reference_forward`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.obs import trace
from repro.obs.log import get_logger
from repro.cim.encoding import ActivationEncoding
from repro.cim.macro import MacroConfig, MacroStats
from repro.rebranch.branch import ReBranchConv2d
from repro.runtime.cache import EngineCache, resolve_cache, weight_fingerprint
from repro.runtime.engine import (
    conv_engine,
    conv_engine_key,
    conv_patches,
    grouped_conv_execute,
    linear_engine,
    linear_engine_key,
)
from repro.runtime.errors import CompileError, UnsupportedModuleError
from repro.runtime.programming import (
    DeploymentReport,
    build_report,
    fold_batchnorm,
    validate_deployable,
)
from repro.runtime.reference import pool2d as _pool
from repro.runtime.session import ExecutionSession

_log = get_logger("runtime.compile")

#: Sentinel distinguishing "use the compiled default encoding" from an
#: explicit ``encoding=None`` (force bit-serial) at run time.
_USE_DEFAULT = object()

#: Node-input index denoting the model input tensor.
INPUT = -1


@dataclass
class RuntimeConfig:
    """Programming-time options of :func:`compile`.

    Fields
    ------
    ``rom_config``
        :class:`~repro.cim.macro.MacroConfig` programmed for frozen
        (ROM-resident) weight layers; ``None`` selects the default
        ``MacroConfig(cell=ROM_1T)``.
    ``sram_config``
        Macro configuration for trainable (SRAM-resident) layers;
        ``None`` selects the default ``MacroConfig(cell=SRAM_CIM_6T)``.
    ``activation_bits``
        Uniform quantization width of every activation batch entering a
        weight layer.  Quantization scales are *batch-global* (seed
        semantics — see docs/numerics.md), and this is also the payload
        width per element charged when activations cross an
        inter-chiplet link in a sharded deployment.
    ``encoding``
        Default word-line :class:`~repro.cim.encoding.ActivationEncoding`
        applied at execution time to layers with non-negative inputs;
        ``None`` means plain bit-serial streaming.  Overridable per run.
    ``fold_bn``
        Fold ``BatchNorm2d`` layers into their preceding convolutions at
        compile time (mutates the module tree once, like chip mask
        preparation).
    ``assume_signed_input``
        Compile-time prediction for the model input's sign; every layer
        after an unsigned activation (ReLU, Sigmoid) is predicted
        unsigned, matching the chip's mixed configuration.  Execution
        still detects the actual sign per batch and programs the other
        variant through the cache if a batch defies the prediction, so
        the prediction affects only what is programmed eagerly.
    ``backend``
        Kernel backend request for every weight layer: ``None`` keeps
        the default ``reference-fast`` kernel, a registered name pins
        that backend, ``"auto"`` runs the compile-time autotuner per
        engine.  Every choice is bitwise identical; this is purely a
        speed decision and it participates in engine cache keys (only
        when set, so existing keys and artifacts are unchanged).
    ``tune_probe_n``
        Probe batch width the autotuner benchmarks linear engines with
        (pick the serving batch size you expect).  Convolutions always
        probe wide — their engines execute im2col patch batches.
    """

    rom_config: Optional[MacroConfig] = None
    sram_config: Optional[MacroConfig] = None
    activation_bits: int = 8
    encoding: Optional[ActivationEncoding] = None
    fold_bn: bool = False
    assume_signed_input: bool = True
    backend: Optional[str] = None
    tune_probe_n: int = 1

    def resolved_rom(self) -> MacroConfig:
        return (
            self.rom_config
            if self.rom_config is not None
            else MacroConfig(cell=ROM_1T)
        )

    def resolved_sram(self) -> MacroConfig:
        return (
            self.sram_config
            if self.sram_config is not None
            else MacroConfig(cell=SRAM_CIM_6T)
        )


class _RunState:
    """Per-run execution context threaded through the plan.

    ``degrade`` is the chaos runtime's seam: when set (duck-typed, see
    :class:`repro.chaos.Degradation`), every engine-bearing step routes
    its engine through ``degrade.wrap`` before executing, so live
    drift/noise faults reach the analog paths without the clean hot
    loop paying more than one ``None`` check per engine node.
    """

    __slots__ = ("rng", "encoding", "stats", "degrade")

    def __init__(self, rng, encoding, degrade=None):
        self.rng = rng
        self.encoding = encoding
        self.stats = MacroStats()
        self.degrade = degrade


@dataclass(frozen=True)
class PlanHandle:
    """Opaque reference to one dataflow value during plan building.

    ``plan_forward`` implementations receive and return these; the only
    legal operations are passing them to the builder (``child`` /
    ``add``).  ``signed`` is the compile-time signedness prediction of
    the value (what gets programmed eagerly — execution re-detects per
    batch).
    """

    index: int
    signed: bool


class _PlanNode:
    """One executable node of the plan DAG.

    ``inputs`` are indices of earlier nodes (:data:`INPUT` is the model
    input); execution order is list order — the fixed topological order
    the builder created the nodes in.
    """

    __slots__ = ("op", "inputs", "name")

    def __init__(self, op: Any, inputs: Tuple[int, ...], name: str):
        self.op = op
        self.inputs = inputs
        self.name = name


class _FuncStep:
    """A pure (engine-free) operation: activation, pooling, reshape."""

    kind = "func"

    def __init__(self, name: str, fn: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self.fn = fn

    def apply(self, x: np.ndarray, state: _RunState) -> np.ndarray:
        return self.fn(x)


class _AddStep:
    """Fan-in: element-wise sum of two dataflow values (residual add)."""

    kind = "add"

    def __init__(self, name: str):
        self.name = name

    def apply(self, a: np.ndarray, b: np.ndarray, state: _RunState) -> np.ndarray:
        return a + b


class _EngineSlot:
    """One weight layer's handle into the engine cache.

    Holds a live reference to the layer's weights (``weight_fn``) and
    macro config (``config_fn`` — the seed path re-decided ROM vs SRAM
    from ``requires_grad`` on every forward, so freezing a layer after
    compilation moves it to ROM here too) plus the fingerprint taken at
    programming time; engines for each input signedness are fetched
    through the cache on demand, so two compiled models over the same
    weights share programmed tiles.

    ``profile_name`` / ``profile_share`` map the slot back onto the
    analytic profile: a grouped convolution programs one slot per group
    (layer id ``<name>::g<i>``), each owning ``1/groups`` of the
    profiled layer's MACs.
    """

    def __init__(
        self,
        layer_id: str,
        kind: str,  # "conv" | "linear"
        weight_fn: Callable[[], np.ndarray],
        config_fn: Callable[[], MacroConfig],
        activation_bits: int,
        cache: EngineCache,
        predicted_signed: bool,
        stride: int = 0,
        padding: int = 0,
        fingerprint: Optional[str] = None,
        profile_name: Optional[str] = None,
        profile_share: float = 1.0,
        backend: Optional[str] = None,
        tune_probe_n: int = 1,
    ):
        self.layer_id = layer_id
        self.kind = kind
        self.weight_fn = weight_fn
        self.config_fn = config_fn
        self.activation_bits = activation_bits
        self.cache = cache
        self.predicted_signed = bool(predicted_signed)
        self.stride = stride
        self.padding = padding
        self.backend = backend
        # Conv engines execute im2col patch batches (hundreds of
        # vectors per call), so their autotuning probe is always wide.
        self.tune_probe_n = (
            max(64, int(tune_probe_n)) if kind == "conv" else int(tune_probe_n)
        )
        self.profile_name = profile_name if profile_name is not None else layer_id
        self.profile_share = float(profile_share)
        # ``fingerprint`` is the snapshot warm-start hook: a caller that
        # already knows the weights' content hash (it wrote them) skips
        # re-hashing here; ``refresh`` always re-hashes the live weights.
        self.fingerprint = (
            fingerprint if fingerprint is not None else weight_fingerprint(weight_fn())
        )
        # Strong per-slot references: the LRU cache shares engines across
        # models, but eviction there must never force this compiled
        # model to reprogram its own layers on the hot path.
        self._engines: Dict[Any, Any] = {}
        # Compile-once: program the predicted variant eagerly.
        self.engine_for(self.predicted_signed)

    def engine_for(self, signed: bool):
        signed = bool(signed)
        config = self.config_fn()
        key = (signed, id(config))
        engine = self._engines.get(key)
        if engine is not None:
            return engine
        engine = self._program(signed, config)
        self._engines[key] = engine
        return engine

    def _program(self, signed: bool, config: MacroConfig):
        if self.kind == "conv":
            return conv_engine(
                self.weight_fn(),
                stride=self.stride,
                padding=self.padding,
                config=config,
                activation_bits=self.activation_bits,
                signed_inputs=signed,
                layer_id=self.layer_id,
                cache=self.cache,
                fingerprint=self.fingerprint,
                backend=self.backend,
                tune_probe_n=self.tune_probe_n,
            )
        return linear_engine(
            self.weight_fn(),
            config=config,
            activation_bits=self.activation_bits,
            signed_inputs=signed,
            layer_id=self.layer_id,
            cache=self.cache,
            fingerprint=self.fingerprint,
            backend=self.backend,
            tune_probe_n=self.tune_probe_n,
        )

    def cache_tier(self) -> str:
        """Provenance of this slot's predicted engine in the shared
        cache — ``"programmed"`` / ``"disk"`` / ``"snapshot"`` — or
        ``"evicted"`` when the LRU dropped it (the slot's own strong
        reference keeps the engine alive regardless)."""
        config = self.config_fn()
        if self.kind == "conv":
            key = conv_engine_key(
                self.weight_fn(),
                self.stride,
                self.padding,
                config,
                self.activation_bits,
                self.predicted_signed,
                layer_id=self.layer_id,
                fingerprint=self.fingerprint,
                backend=self.backend,
            )
        else:
            key = linear_engine_key(
                self.weight_fn(),
                config,
                self.activation_bits,
                self.predicted_signed,
                layer_id=self.layer_id,
                fingerprint=self.fingerprint,
                backend=self.backend,
            )
        tier = self.cache.tier_of(key)
        return tier if tier is not None else "evicted"

    def refresh(self) -> bool:
        """Re-fingerprint the live weights; True when they changed."""
        fingerprint = weight_fingerprint(self.weight_fn())
        changed = fingerprint != self.fingerprint
        if changed:
            self.fingerprint = fingerprint
            self._engines.clear()  # reprogram (through the cache) on next use
        return changed


class _ConvStep:
    kind = "conv"

    def __init__(self, slot: _EngineSlot, module: nn.Conv2d):
        self.slot = slot
        self.module = module
        self.name = slot.layer_id

    def apply(self, x: np.ndarray, state: _RunState) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # Seed semantics: the encoding fallback keys on the raw layer
        # input, while quantization signedness keys on the im2col
        # patches (what actually reaches the word lines) — a stride
        # larger than the kernel can make the two disagree.
        encoding = None if bool((x < 0).any()) else state.encoding
        patches, out_hw = conv_patches(
            x,
            self.module.weight.data.shape,
            self.slot.stride,
            self.slot.padding,
        )
        signed = bool((patches < 0).any())
        engine = self.slot.engine_for(signed)
        if state.degrade is not None:
            engine = state.degrade.wrap(engine)
        out, stats = engine.execute_patches(
            patches, x.shape[0], out_hw, rng=state.rng, encoding=encoding
        )
        state.stats = state.stats + stats
        if self.module.bias is not None:
            out = out + self.module.bias.data.reshape(1, -1, 1, 1)
        return out


class _GroupedConvStep:
    """A grouped/depthwise convolution lowered to per-group engines.

    Group ``g`` owns its slice of the input channels and of the output
    channels, programmed as an independent conv engine (one
    :class:`_EngineSlot` per group, shared through the engine cache).
    Groups execute in index order against the shared run RNG —
    deterministic group-major draws, matching the (equally grouped)
    reference path bit for bit.
    """

    kind = "grouped_conv"

    def __init__(self, name: str, slots: List[_EngineSlot], module: nn.Conv2d):
        self.name = name
        self.slots = slots
        self.module = module

    def apply(self, x: np.ndarray, state: _RunState) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        encoding = None if bool((x < 0).any()) else state.encoding
        oc = self.module.out_channels
        icg = self.module.in_channels // self.module.groups
        kh, kw = self.module.kernel_size
        if state.degrade is None:
            engine_for = lambda g, signed: self.slots[g].engine_for(signed)
        else:
            degrade = state.degrade
            engine_for = lambda g, signed: degrade.wrap(
                self.slots[g].engine_for(signed)
            )
        out, stats = grouped_conv_execute(
            x,
            (oc, icg, kh, kw),
            self.module.groups,
            self.slots[0].stride,
            self.slots[0].padding,
            engine_for,
            rng=state.rng,
            encoding=encoding,
        )
        state.stats = state.stats + stats
        if self.module.bias is not None:
            out = out + self.module.bias.data.reshape(1, -1, 1, 1)
        return out


class _LinearStep:
    kind = "linear"

    def __init__(self, slot: _EngineSlot, module: nn.Linear):
        self.slot = slot
        self.module = module
        self.name = slot.layer_id

    def apply(self, x: np.ndarray, state: _RunState) -> np.ndarray:
        signed = bool((x < 0).any())
        engine = self.slot.engine_for(signed)
        if state.degrade is not None:
            engine = state.degrade.wrap(engine)
        encoding = None if signed else state.encoding
        out, stats = engine.execute(x, rng=state.rng, encoding=encoding)
        state.stats = state.stats + stats
        if self.module.bias is not None:
            out = out + self.module.bias.data
        return out


class GraphBuilder:
    """The surface a composite's ``plan_forward(builder, x)`` sees.

    ``child`` lowers a child module (by its registration name) on a
    dataflow value; ``add`` wires a two-input element-wise sum (the
    residual fan-in).  Reusing a handle in several calls expresses
    fan-out (an identity skip needs no op at all).  Every call appends
    nodes in declaration order — that order *is* the execution (and
    RNG-draw) order.
    """

    __slots__ = ("_builder", "_prefix")

    def __init__(self, builder: "_PlanBuilder", prefix: str):
        self._builder = builder
        self._prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def child(self, module: nn.Module, name: str, x: PlanHandle) -> PlanHandle:
        """Lower child ``module`` (registered as ``name``) applied to ``x``."""
        self._builder._check_handle(x)
        return self._builder.build(module, self._qualify(name), x)

    def add(self, a: PlanHandle, b: PlanHandle, name: str = "add") -> PlanHandle:
        """Element-wise ``a + b`` (residual fan-in)."""
        self._builder._check_handle(a)
        self._builder._check_handle(b)
        full = self._qualify(name)
        index = self._builder._append(
            _AddStep(full), (a.index, b.index), full
        )
        return PlanHandle(index, a.signed or b.signed)


class _PlanBuilder:
    """Walk the module tree once, building the plan DAG and engine slots."""

    def __init__(
        self,
        config: RuntimeConfig,
        cache: EngineCache,
        fingerprints: Optional[Dict[str, str]] = None,
    ):
        self.config = config
        self.rom_config = config.resolved_rom()
        self.sram_config = config.resolved_sram()
        self.cache = cache
        self.fingerprints = fingerprints if fingerprints is not None else {}
        self.nodes: List[_PlanNode] = []
        self.slots: List[_EngineSlot] = []

    # -- node plumbing --------------------------------------------------
    def _append(self, op: Any, inputs: Tuple[int, ...], name: str) -> int:
        self.nodes.append(_PlanNode(op, tuple(inputs), name))
        return len(self.nodes) - 1

    def _check_handle(self, handle: Any) -> None:
        if not isinstance(handle, PlanHandle) or not (
            INPUT <= handle.index < len(self.nodes)
        ):
            raise CompileError(
                f"plan_forward passed an invalid dataflow value "
                f"{handle!r}; only PlanHandles obtained from this builder "
                f"are legal"
            )

    def _leaf(self, op: Any, name: str, x: PlanHandle, signed: bool) -> PlanHandle:
        index = self._append(op, (x.index,), name)
        return PlanHandle(index, signed)

    def _placement_config_fn(self, module) -> Callable[[], MacroConfig]:
        """Live ROM/SRAM choice: trainable -> SRAM, frozen -> ROM.

        Evaluated at execution time like the seed path, so freezing or
        unfreezing a layer after compilation moves it between macros.
        """
        return lambda: (
            self.sram_config if module.weight.requires_grad else self.rom_config
        )

    def _conv_slot(
        self,
        name: str,
        conv: nn.Conv2d,
        config_fn: Callable[[], MacroConfig],
        signed: bool,
        weight_fn: Optional[Callable[[], np.ndarray]] = None,
        profile_name: Optional[str] = None,
        profile_share: float = 1.0,
    ) -> _EngineSlot:
        sh, sw = conv.stride
        ph, pw = conv.padding
        if sh != sw or ph != pw:
            raise ValueError("deployment supports square stride/padding only")
        slot = _EngineSlot(
            layer_id=name,
            kind="conv",
            weight_fn=weight_fn if weight_fn is not None else (lambda: conv.weight.data),
            config_fn=config_fn,
            activation_bits=self.config.activation_bits,
            cache=self.cache,
            predicted_signed=signed,
            stride=sh,
            padding=ph,
            fingerprint=self.fingerprints.get(name),
            profile_name=profile_name,
            profile_share=profile_share,
            backend=self.config.backend,
            tune_probe_n=self.config.tune_probe_n,
        )
        self.slots.append(slot)
        return slot

    def _linear_slot(
        self,
        name: str,
        linear: nn.Linear,
        config_fn: Callable[[], MacroConfig],
        signed: bool,
    ) -> _EngineSlot:
        slot = _EngineSlot(
            layer_id=name,
            kind="linear",
            weight_fn=lambda: linear.weight.data,
            config_fn=config_fn,
            activation_bits=self.config.activation_bits,
            cache=self.cache,
            predicted_signed=signed,
            fingerprint=self.fingerprints.get(name),
            backend=self.config.backend,
            tune_probe_n=self.config.tune_probe_n,
        )
        self.slots.append(slot)
        return slot

    def _conv(self, name: str, conv: nn.Conv2d, config_fn, x: PlanHandle) -> PlanHandle:
        if conv.groups > 1:
            ocg = conv.out_channels // conv.groups
            slots = [
                self._conv_slot(
                    f"{name}::g{g}",
                    conv,
                    config_fn,
                    x.signed,
                    weight_fn=lambda g=g: conv.weight.data[g * ocg : (g + 1) * ocg],
                    profile_name=name,
                    profile_share=1.0 / conv.groups,
                )
                for g in range(conv.groups)
            ]
            return self._leaf(_GroupedConvStep(name, slots, conv), name, x, True)
        slot = self._conv_slot(name, conv, config_fn, x.signed)
        return self._leaf(_ConvStep(slot, conv), name, x, True)

    def _chain(self, module: nn.Module, name: str, x: PlanHandle) -> PlanHandle:
        for child_name, child in module._modules.items():
            x = self.build(
                child, f"{name}.{child_name}" if name else child_name, x
            )
        return x

    # -- lowering -------------------------------------------------------
    def build(self, module: nn.Module, name: str, x: PlanHandle) -> PlanHandle:
        """Lower ``module`` applied to ``x``; returns the output handle."""
        if isinstance(module, ReBranchConv2d):
            # Fixed Fig. 9 placement: trunk + projections on ROM macros,
            # res-conv on SRAM, regardless of requires_grad — lowered as
            # the explicit diamond: x fans out to trunk and compress,
            # the branch chain rejoins the trunk at an add node.
            rom = lambda: self.rom_config  # noqa: E731
            sram = lambda: self.sram_config  # noqa: E731
            trunk = self._conv(f"{name}.trunk", module.trunk, rom, x)
            branch = self._conv(f"{name}.compress", module.compress, rom, x)
            branch = self._conv(f"{name}.res_conv", module.res_conv, sram, branch)
            branch = self._conv(f"{name}.decompress", module.decompress, rom, branch)
            index = self._append(
                _AddStep(f"{name}.add"), (trunk.index, branch.index), f"{name}.add"
            )
            return PlanHandle(index, True)

        if isinstance(module, nn.Conv2d):
            return self._conv(name, module, self._placement_config_fn(module), x)

        if isinstance(module, nn.Linear):
            slot = self._linear_slot(
                name, module, self._placement_config_fn(module), x.signed
            )
            return self._leaf(_LinearStep(slot, module), name, x, True)

        if isinstance(module, nn.ReLU):
            return self._leaf(
                _FuncStep(name, lambda v: np.maximum(v, 0.0)), name, x, False
            )

        if isinstance(module, nn.LeakyReLU):
            # Read the slope live: the seed wrapper picked up in-place
            # module mutation between forwards.
            return self._leaf(
                _FuncStep(
                    name,
                    lambda v, m=module: np.where(v > 0, v, m.negative_slope * v),
                ),
                name,
                x,
                True,
            )

        if isinstance(module, nn.Sigmoid):
            return self._leaf(
                _FuncStep(
                    name, lambda v: 1.0 / (1.0 + np.exp(-np.clip(v, -60, 60)))
                ),
                name,
                x,
                False,
            )

        if isinstance(module, nn.Tanh):
            return self._leaf(_FuncStep(name, np.tanh), name, x, True)

        if isinstance(module, (nn.Identity, nn.Dropout)):
            return self._leaf(
                _FuncStep(name, lambda v: v), name, x, x.signed
            )

        if isinstance(module, nn.MaxPool2d):
            return self._leaf(
                _FuncStep(
                    name,
                    lambda v, m=module: _pool(v, m.kernel_size, m.stride, "max"),
                ),
                name,
                x,
                x.signed,
            )

        if isinstance(module, nn.AvgPool2d):
            return self._leaf(
                _FuncStep(
                    name,
                    lambda v, m=module: _pool(v, m.kernel_size, m.stride, "avg"),
                ),
                name,
                x,
                x.signed,
            )

        if isinstance(module, nn.GlobalAvgPool2d):
            return self._leaf(
                _FuncStep(name, lambda v: v.mean(axis=(2, 3), keepdims=True)),
                name,
                x,
                x.signed,
            )

        if isinstance(module, nn.Flatten):
            return self._leaf(
                _FuncStep(name, lambda v: v.reshape(v.shape[0], -1)),
                name,
                x,
                x.signed,
            )

        # Composites.  An *empty* Sequential is a legal no-op placeholder
        # (the seed path ran it as identity); everything else must either
        # declare its dataflow (plan_forward) or be a bare container that
        # never overrode forward.
        if isinstance(module, nn.Sequential):
            return self._chain(module, name, x)

        plan = getattr(type(module), "plan_forward", None)
        if plan is not None:
            out = module.plan_forward(GraphBuilder(self, name), x)
            self._check_handle(out)
            return out

        if module._modules:
            if type(module).forward is nn.Module.forward:
                # A bare container (no custom dataflow to betray).
                return self._chain(module, name, x)
            raise UnsupportedModuleError(
                name,
                type(module).__name__,
                "the composite overrides forward() without declaring its "
                "dataflow; implement plan_forward(builder, x) (or set "
                "plan_forward = nn.plan_serial for a registration-order "
                "chain)",
            )

        raise UnsupportedModuleError(
            name, type(module).__name__, "no runtime lowering for this type"
        )


class CompiledModel:
    """A model whose macros are programmed; ready for batched execution.

    Obtain one through :func:`compile`.  :meth:`run` is the hot path:
    it never re-quantizes weights or rebuilds tiles — only activation
    quantization and the macro arithmetic happen per batch.  The plan
    is a DAG (:class:`_PlanNode` list in fixed topological order);
    intermediate values are refcounted and freed after their last
    consumer.
    """

    def __init__(
        self,
        model: nn.Module,
        config: RuntimeConfig,
        nodes: List[_PlanNode],
        output_index: int,
        slots: List[_EngineSlot],
        report: DeploymentReport,
        cache: EngineCache,
        rng: Optional[np.random.Generator],
    ):
        self.model = model
        self.config = config
        self.report = report
        self.cache = cache
        self._nodes = nodes
        self._output_index = output_index
        self._slots = slots
        self._rng = rng if rng is not None else np.random.default_rng()
        self._profiles: Dict[Tuple[int, ...], Any] = {}
        self._consumers = self._count_consumers()

    def _count_consumers(self) -> Dict[int, int]:
        """Refcounts: how many consumers each value (node output or the
        model input) has, with one extra hold on the plan output."""
        consumers: Dict[int, int] = {}
        for node in self._nodes:
            for j in node.inputs:
                consumers[j] = consumers.get(j, 0) + 1
        consumers[self._output_index] = consumers.get(self._output_index, 0) + 1
        for i, node in enumerate(self._nodes):
            if consumers.get(i, 0) == 0:
                raise CompileError(
                    f"plan node {node.name!r} is dead: its output is never "
                    f"consumed and it is not the plan output — fix the "
                    f"plan_forward that created it"
                )
        return consumers

    # -- plan introspection --------------------------------------------
    @property
    def _steps(self) -> List[_PlanNode]:
        """Back-compat alias: the plan nodes in execution order."""
        return self._nodes

    def plan_spec(self) -> Dict[str, Any]:
        """JSON-serializable topology of the plan DAG (for artifacts,
        debugging and drift checks): node names, op kinds, input edges,
        and the output index."""
        return {
            "nodes": [
                {
                    "name": node.name,
                    "op": node.op.kind,
                    "inputs": list(node.inputs),
                }
                for node in self._nodes
            ],
            "output": self._output_index,
        }

    # -- execution -----------------------------------------------------
    def run(
        self,
        batch: np.ndarray,
        *,
        encoding: Any = _USE_DEFAULT,
        rng: Optional[np.random.Generator] = None,
        session: Optional[ExecutionSession] = None,
        degrade: Any = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Stream one activation batch through the programmed engines.

        Returns ``(outputs, stats)`` where ``stats`` covers exactly this
        run; pass ``session`` to additionally accumulate across runs.
        ``encoding`` overrides the compiled default word-line encoding
        for this run (``None`` forces bit-serial); layers whose input
        carries negative values fall back to bit-serial either way.
        ``degrade`` (a :class:`repro.chaos.Degradation`) routes every
        engine through the live fault-injection paths for this run.

        Concurrent sessions over one compiled model should pass their
        own ``rng`` per run when the bit line is noisy — the compiled
        default generator, like any numpy ``Generator``, is not safe to
        draw from concurrently.
        """
        state = _RunState(
            rng=rng if rng is not None else self._rng,
            encoding=self.config.encoding if encoding is _USE_DEFAULT else encoding,
            degrade=degrade,
        )
        x = np.asarray(batch, dtype=np.float64)
        n_samples = x.shape[0] if x.ndim else 1
        # Resolve the tracer once per run: with tracing disabled this is
        # one module-global read and the plan executes on the exact
        # pre-instrumentation loop (benchmarked < 3% end-to-end).
        tracer = trace.current()
        if tracer is None:
            out = self._execute_plan(x, state)
        else:
            out = self._execute_plan_traced(x, state, tracer, n_samples)
        if session is not None:
            session.record(state.stats, samples=n_samples)
        return out, state.stats

    def _execute_plan(self, x: np.ndarray, state: _RunState) -> np.ndarray:
        """The untraced hot path (kept loop-for-loop minimal)."""
        values: Dict[int, np.ndarray] = {INPUT: x}
        remaining = dict(self._consumers)
        for i, node in enumerate(self._nodes):
            args = tuple(values[j] for j in node.inputs)
            values[i] = node.op.apply(*args, state)
            for j in node.inputs:
                remaining[j] -= 1
                if remaining[j] == 0:
                    del values[j]  # refcount hit zero: free the buffer
        return values[self._output_index]

    def _execute_plan_traced(
        self,
        x: np.ndarray,
        state: _RunState,
        tracer: "trace.Tracer",
        n_samples: int,
    ) -> np.ndarray:
        """Same plan walk, one span per node carrying both clocks.

        Each node span's ``chip_ns`` / ``energy_fj`` / ``macs`` are the
        *deltas* of the run's cumulative :class:`MacroStats` across the
        node, so the spans partition the run exactly: their energy sums
        to ``stats.total_energy_fj`` and their chip time to
        ``stats.latency_ns`` (the profiler and the chip-time trace track
        rely on this).  The enclosing ``run`` span carries the totals
        under ``chip_total_ns`` so it never double-counts into the
        synthetic chip track.
        """
        with tracer.span(
            "run", "runtime", model=type(self.model).__name__, batch=n_samples
        ) as run_span:
            values: Dict[int, np.ndarray] = {INPUT: x}
            remaining = dict(self._consumers)
            for i, node in enumerate(self._nodes):
                args = tuple(values[j] for j in node.inputs)
                before = state.stats
                with tracer.span(node.name, "plan", kind=node.op.kind) as sp:
                    values[i] = node.op.apply(*args, state)
                    after = state.stats
                    sp.set("chip_ns", after.latency_ns - before.latency_ns)
                    sp.set(
                        "energy_fj",
                        after.total_energy_fj - before.total_energy_fj,
                    )
                    sp.set("macs", after.macs - before.macs)
                    sp.set("node_index", i)
                for j in node.inputs:
                    remaining[j] -= 1
                    if remaining[j] == 0:
                        del values[j]
            run_span.set("chip_total_ns", state.stats.latency_ns)
            run_span.set("energy_total_fj", state.stats.total_energy_fj)
        return values[self._output_index]

    def new_session(self) -> ExecutionSession:
        return ExecutionSession()

    # -- freshness -----------------------------------------------------
    def ensure_fresh(self) -> int:
        """Re-fingerprint every layer's live weights.

        Engines for changed weights are re-programmed lazily through the
        cache on the next run.  Returns the number of changed layers.
        Call this after mutating weights in place (e.g. on-chip
        training of SRAM layers); a pure compile-once serving path never
        needs it.
        """
        return sum(1 for slot in self._slots if slot.refresh())

    # -- introspection -------------------------------------------------
    @property
    def n_weight_layers(self) -> int:
        return len(self._slots)

    def programmed_engines(self) -> Dict[str, Any]:
        """Layer id -> engine programmed for the predicted signedness."""
        return {
            slot.layer_id: slot.engine_for(slot.predicted_signed)
            for slot in self._slots
        }

    def kernel_backends(self) -> Dict[str, Optional[str]]:
        """Layer id -> resolved kernel backend name per programmed
        engine (``None`` where the configuration forces the reference
        macro path), with a ``" (tuned)"`` suffix on autotuned winners.
        """
        out: Dict[str, Optional[str]] = {}
        for slot in self._slots:
            engine = slot.engine_for(slot.predicted_signed)
            name = engine.kernel_backend
            if name is not None and engine.tuned:
                name = f"{name} (tuned)"
            out[slot.layer_id] = name
        return out

    def profile(self, input_shape: Tuple[int, ...]):
        """Analytic :class:`~repro.models.profile.ModelProfile` of the
        underlying model, cached per input shape."""
        key = tuple(input_shape)
        if key not in self._profiles:
            from repro.models.profile import profile_model

            self._profiles[key] = profile_model(self.model, key)
        return self._profiles[key]


def compile(
    model: nn.Module,
    config: Optional[RuntimeConfig] = None,
    *,
    rng: Optional[np.random.Generator] = None,
    cache: Optional[EngineCache] = None,
    shards: Optional[int] = None,
    link: Optional[Any] = None,
    shard_input_shape: Optional[Tuple[int, ...]] = None,
    fingerprints: Optional[Dict[str, str]] = None,
):
    """Program ``model``'s macros once; returns the executable image.

    ``cache`` defaults to the process-wide engine cache, so compiling
    the same weights twice (or from two sessions) programs each layer's
    macros exactly once.  ``rng`` seeds the default execution-time noise
    stream (only consumed when the bit line is noisy).

    ``shards`` (when given, >= 1) partitions the compiled plan across
    that many simulated chiplets and returns a
    :class:`~repro.runtime.sharded.ShardedModel` instead — equivalent to
    ``sharded.shard(compile(model, config), shards)``; ``shards=1``
    yields a single-shard model (the serial baseline of a sweep, free
    of link crossings).  ``link`` overrides the inter-chiplet link spec
    and ``shard_input_shape`` enables the MAC-balanced layer cut.

    ``fingerprints`` (layer id -> content hash) supplies trusted
    programming fingerprints for layers whose hash the caller already
    knows — the snapshot warm-start path, which wrote the weights it is
    now compiling over.  Layers absent from the mapping are hashed as
    usual, and ``ensure_fresh()`` always re-hashes the live weights.
    """
    config = config if config is not None else RuntimeConfig()
    cache = resolve_cache(cache)
    with trace.maybe_span(
        "compile", "compile", model=type(model).__name__
    ) as compile_span:
        if config.fold_bn:
            with trace.maybe_span("fold_batchnorm", "compile"):
                fold_batchnorm(model)
        with trace.maybe_span("validate_deployable", "compile"):
            validate_deployable(model)
        builder = _PlanBuilder(config, cache, fingerprints)
        with trace.maybe_span("build_plan", "compile"):
            output = builder.build(
                model, "", PlanHandle(INPUT, config.assume_signed_input)
            )
        report = build_report(
            model,
            builder.rom_config.weight_bits,
            builder.sram_config.weight_bits,
        )
        if compile_span is not None:
            compile_span.set("nodes", len(builder.nodes))
            compile_span.set("weight_layers", len(builder.slots))
    _log.debug(
        "compiled %s: %d plan nodes, %d weight layers, fold_bn=%s",
        type(model).__name__,
        len(builder.nodes),
        len(builder.slots),
        config.fold_bn,
    )
    compiled = CompiledModel(
        model,
        config,
        builder.nodes,
        output.index,
        builder.slots,
        report,
        cache,
        rng,
    )
    if shards is None:
        return compiled
    from repro.runtime.sharded import shard as _shard

    return _shard(compiled, shards, link=link, input_shape=shard_input_shape)


#: Alias for callers that shadow the builtin ``compile``.
compile_model = compile
