"""Typed compile-time failures of the deployment runtime.

:class:`CompileError` subclasses ``TypeError`` because the runtime
historically raised bare ``TypeError("cannot deploy ...")`` for
undeployable modules; existing callers that catch ``TypeError`` keep
working while new callers can catch the precise class.
"""

from __future__ import annotations


class CompileError(TypeError):
    """A model cannot be lowered to a deployment plan."""


class UnsupportedModuleError(CompileError):
    """A module on the dataflow path has no runtime lowering.

    Raised at *compile* time (and by the reference walker) — most
    importantly for composites that override ``forward`` without
    declaring their dataflow via ``plan_forward``: silently chaining
    their children in registration order would either crash mid-run on
    a shape mismatch or, worse, compute the wrong thing when shapes
    happen to line up (e.g. a residual block without its skip-add).
    """

    def __init__(self, qualified_name: str, module_type: str, reason: str):
        self.qualified_name = qualified_name
        self.module_type = module_type
        super().__init__(
            f"cannot deploy module {qualified_name or '<root>'!r} of type "
            f"{module_type}: {reason}"
        )
