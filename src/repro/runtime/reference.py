"""The seed per-call execution path, preserved as a bit-exact oracle.

The seed library rebuilt every tile and re-quantized every weight on
each forward call.  :func:`reference_forward` keeps that exact behaviour
— same arithmetic, same RNG consumption order — so tests can pin the
compiled runtime's outputs bitwise against it and benchmarks can
measure the compile-once speedup against the true baseline.

The walker understands the same dataflow protocol as the compiled
plan builder: composites declare their graph via ``plan_forward``
(see :mod:`repro.runtime.compiled`), which the walker executes
*eagerly* — ``builder.child`` runs the child right away, ``builder.add``
sums the arrays.  Because the compiled plan executes its nodes in
exactly the order ``plan_forward`` declared them, eager execution here
consumes the RNG stream identically, so residual and grouped-conv
models stay bitwise comparable across both paths.  A composite that
overrides ``forward`` without declaring a plan raises the same typed
:class:`~repro.runtime.errors.UnsupportedModuleError` the compiler
raises.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import nn
from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.cim.encoding import ActivationEncoding
from repro.cim.macro import MacroConfig, MacroStats
from repro.cim.mvm import reference_cim_conv2d, reference_cim_linear
from repro.rebranch.branch import ReBranchConv2d
from repro.runtime.errors import UnsupportedModuleError


class _EagerGraph:
    """The ``plan_forward`` builder surface, executed eagerly.

    Dataflow values are the actual activation arrays; ``child`` runs
    the child module immediately and ``add`` sums.  Declaration order
    is execution order — the same fixed topological order the compiled
    DAG uses — so RNG draws line up bit for bit.
    """

    __slots__ = ("_runner", "_prefix")

    def __init__(self, runner: "_ReferenceRunner", prefix: str):
        self._runner = runner
        self._prefix = prefix

    def child(self, module: nn.Module, name: str, x: np.ndarray) -> np.ndarray:
        full = f"{self._prefix}.{name}" if self._prefix else name
        return self._runner.run(module, x, full)

    def add(self, a: np.ndarray, b: np.ndarray, name: str = "add") -> np.ndarray:
        return a + b


class _ReferenceRunner:
    def __init__(self, rom_config, sram_config, activation_bits, rng, encoding):
        self.rom_config = rom_config
        self.sram_config = sram_config
        self.activation_bits = activation_bits
        self.rng = rng
        self.encoding = encoding
        self.stats = MacroStats()

    def _encoding_for(self, x: np.ndarray) -> Optional[ActivationEncoding]:
        if self.encoding is None or (x < 0).any():
            return None
        return self.encoding

    def _conv(self, x, conv, config):
        sh, sw = conv.stride
        ph, pw = conv.padding
        if sh != sw or ph != pw:
            raise ValueError("deployment supports square stride/padding only")
        out, stats = reference_cim_conv2d(
            x,
            conv.weight.data,
            stride=sh,
            padding=ph,
            config=config,
            activation_bits=self.activation_bits,
            rng=self.rng,
            encoding=self._encoding_for(x),
            groups=conv.groups,
        )
        self.stats = self.stats + stats
        if conv.bias is not None:
            out = out + conv.bias.data.reshape(1, -1, 1, 1)
        return out

    def run(self, module: nn.Module, x: np.ndarray, name: str = "") -> np.ndarray:
        if isinstance(module, nn.Sequential):
            for child_name, child in module._modules.items():
                x = self.run(
                    child, x, f"{name}.{child_name}" if name else child_name
                )
            return x
        if isinstance(module, ReBranchConv2d):
            trunk = self._conv(x, module.trunk, self.rom_config)
            branch = self._conv(x, module.compress, self.rom_config)
            branch = self._conv(branch, module.res_conv, self.sram_config)
            branch = self._conv(branch, module.decompress, self.rom_config)
            return trunk + branch
        if isinstance(module, nn.Conv2d):
            config = (
                self.sram_config if module.weight.requires_grad else self.rom_config
            )
            return self._conv(x, module, config)
        if isinstance(module, nn.Linear):
            config = (
                self.sram_config if module.weight.requires_grad else self.rom_config
            )
            out, stats = reference_cim_linear(
                x,
                module.weight.data,
                config=config,
                activation_bits=self.activation_bits,
                rng=self.rng,
                encoding=self._encoding_for(x),
            )
            self.stats = self.stats + stats
            if module.bias is not None:
                out = out + module.bias.data
            return out
        if isinstance(module, (nn.ReLU,)):
            return np.maximum(x, 0.0)
        if isinstance(module, nn.LeakyReLU):
            return np.where(x > 0, x, module.negative_slope * x)
        if isinstance(module, nn.Sigmoid):
            return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        if isinstance(module, nn.Tanh):
            return np.tanh(x)
        if isinstance(module, (nn.Identity, nn.Dropout)):
            return x
        if isinstance(module, nn.MaxPool2d):
            return pool2d(x, module.kernel_size, module.stride, "max")
        if isinstance(module, nn.AvgPool2d):
            return pool2d(x, module.kernel_size, module.stride, "avg")
        if isinstance(module, nn.GlobalAvgPool2d):
            return x.mean(axis=(2, 3), keepdims=True)
        if isinstance(module, nn.Flatten):
            return x.reshape(x.shape[0], -1)
        if getattr(type(module), "plan_forward", None) is not None:
            return module.plan_forward(_EagerGraph(self, name), x)
        if module._modules:
            if type(module).forward is nn.Module.forward:
                # A bare container: no custom dataflow to betray.
                for child_name, child in module._modules.items():
                    x = self.run(
                        child, x, f"{name}.{child_name}" if name else child_name
                    )
                return x
            raise UnsupportedModuleError(
                name,
                type(module).__name__,
                "the composite overrides forward() without declaring its "
                "dataflow; implement plan_forward(builder, x) (or set "
                "plan_forward = nn.plan_serial for a registration-order "
                "chain)",
            )
        raise UnsupportedModuleError(
            name, type(module).__name__, "no runtime lowering for this type"
        )


def pool2d(x: np.ndarray, kernel, stride, mode: str) -> np.ndarray:
    """The seed deployment pooling (stride == kernel only), shared by the
    reference and compiled paths so they cannot diverge."""
    k = kernel if isinstance(kernel, int) else kernel[0]
    s = k if stride is None else (stride if isinstance(stride, int) else stride[0])
    if s != k:
        raise ValueError("deployment supports stride == kernel pooling only")
    n, c, h, w = x.shape
    oh, ow = h // k, w // k
    view = x[:, :, : oh * k, : ow * k].reshape(n, c, oh, k, ow, k)
    return view.max(axis=(3, 5)) if mode == "max" else view.mean(axis=(3, 5))


def reference_forward(
    model: nn.Module,
    x: np.ndarray,
    rom_config: Optional[MacroConfig] = None,
    sram_config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
    encoding: Optional[ActivationEncoding] = None,
) -> Tuple[np.ndarray, MacroStats]:
    """Seed-semantics forward pass: rebuild and re-quantize per call.

    Returns ``(outputs, stats)``.  This is the baseline the compiled
    runtime must match bitwise (same inputs, configs, and RNG) and the
    yardstick its speedup is measured against.
    """
    runner = _ReferenceRunner(
        rom_config if rom_config is not None else MacroConfig(cell=ROM_1T),
        sram_config if sram_config is not None else MacroConfig(cell=SRAM_CIM_6T),
        activation_bits,
        rng if rng is not None else np.random.default_rng(),
        encoding,
    )
    out = runner.run(model, np.asarray(x, dtype=np.float64))
    return out, runner.stats
