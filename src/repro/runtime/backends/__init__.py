"""Pluggable kernel backends for programmed engines.

One :class:`~repro.runtime.backends.base.KernelBackend` is one
strategy for executing a programmed tiled engine; all of them are held
to bitwise identity with the reference macro walk.  ``reference-fast``
is the default (the proven fused bit-serial kernels), ``popcount``
contracts packed uint64 bit planes, and
:func:`~repro.runtime.backends.autotune.tune_kernel` picks the fastest
verified one per engine at compile time.
"""

from repro.runtime.backends.base import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.runtime.backends.reference_fast import (
    MacroBitSerialKernel,
    TiledBitSerialKernel,
)
from repro.runtime.backends.popcount import PopcountBitSerialKernel
from repro.runtime.backends.autotune import (
    TuneReport,
    clear_tune_cache,
    tune_kernel,
)

__all__ = [
    "AUTO_BACKEND",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "MacroBitSerialKernel",
    "PopcountBitSerialKernel",
    "TiledBitSerialKernel",
    "TuneReport",
    "available_backends",
    "clear_tune_cache",
    "get_backend",
    "register_backend",
    "tune_kernel",
]
