"""The kernel-backend contract and registry.

A *kernel backend* is one strategy for executing a programmed
:class:`~repro.cim.mvm.CimTiledMatmul` — the program-time layout it
builds in its constructor plus a ``matmul(x) -> (out, MacroStats)``
hot path.  Every backend is held to the same contract the original
fast kernel established: **bitwise identity** with the reference
macro walk (:meth:`repro.cim.macro.CimMacro.matmul` accumulated in
tile order) for every input it accepts — outputs *and* stats.  A
backend may therefore be freely substituted per engine; the autotuner
(:mod:`repro.runtime.backends.autotune`) picks the fastest one at
compile time and *vetoes* — never trusts — any candidate whose probe
output is not bit-for-bit the reference kernel's.

Backends register themselves by name at import time; the names are
stable identifiers that travel in ``.rcma`` snapshot headers so a
warm-started process rebuilds the tuned winner without re-benchmarking.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Tuple, Type

import numpy as np

from repro.cim.macro import MacroConfig, MacroStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.cim.mvm import CimTiledMatmul

#: The backend every engine uses unless told otherwise — the proven
#: fused bit-serial kernel that predates the backend layer.
DEFAULT_BACKEND = "reference-fast"

#: Sentinel backend name: benchmark the registered candidates at
#: program time and keep the fastest bitwise-identical one.
AUTO_BACKEND = "auto"


class KernelBackend(abc.ABC):
    """One execution strategy for a programmed tiled engine.

    The constructor *is* the program-time layout step: it may build any
    derived operands it wants from the engine's programmed tiles (plane
    matrices, packed words, lookup tables).  :meth:`matmul` is the
    per-batch hot path and must return bitwise-identical ``(out,
    stats)`` to the reference tile walk for every accepted input.
    """

    #: Stable registry / snapshot identifier, set by each subclass.
    backend_name: str = ""

    @abc.abstractmethod
    def __init__(self, engine: "CimTiledMatmul"):
        """Build the backend's layout for ``engine`` (program time)."""

    @staticmethod
    def supported(config: MacroConfig) -> bool:
        """True when this backend is bit-exact for ``config``."""
        raise NotImplementedError

    @abc.abstractmethod
    def matmul(self, x: np.ndarray) -> Tuple[np.ndarray, MacroStats]:
        """Execute one integer-code batch ``(rows, n)`` (execute time)."""


_REGISTRY: Dict[str, Type[KernelBackend]] = {}


def register_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Class decorator: publish ``cls`` under its ``backend_name``."""
    if not cls.backend_name:
        raise ValueError(f"{cls.__name__} declares no backend_name")
    _REGISTRY[cls.backend_name] = cls
    return cls


def get_backend(name: str) -> Type[KernelBackend]:
    """The backend class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(
            f"unknown kernel backend {name!r} (registered: {known})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted (default first)."""
    names = sorted(_REGISTRY)
    if DEFAULT_BACKEND in names:
        names.remove(DEFAULT_BACKEND)
        names.insert(0, DEFAULT_BACKEND)
    return tuple(names)
