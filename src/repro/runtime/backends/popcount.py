"""The ``popcount`` backend: bit-plane GEMM over packed uint64 words.

The reference-fast kernel computes the ON-cell count tensor as a
float32 GEMM between 0/1 plane matrices.  Those planes are one *bit*
of information per float32 lane; this backend packs them 64-per-word
(the same ``np.packbits`` layout the snapshot serializer stores) and
replaces the GEMM with ``popcount(w & x)`` accumulated over words.

For serving-sized batches the count contraction is skinny — a matrix ×
few-vectors product — where BLAS has nothing to block over and the
packed form touches 1/32nd the memory; there the popcount contraction
wins outright.  For wide batches BLAS's cache blocking wins instead,
and the word loop's broadcast temporaries lose badly.  Neither regime
is guessed at: the autotuner *measures* both per engine at program
time and keeps the faster one, so this backend only ever runs where it
was benchmarked faster.

Bitwise identity holds by construction: ON-cell counts are exact small
integers whichever way they are contracted, the ADC gather indexes the
same LUT with the same integers, and the recombination reuses the
veto-proven einsum machinery of the base class unchanged — so every
float that can round is produced by the exact same operation sequence
as the reference-fast kernel.  The autotuner still *verifies* (output
and stats, bit for bit) before this backend can win; the argument
above is why the veto never fires, not a substitute for it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.cim.macro import MacroConfig, MacroStats
from repro.runtime.backends.base import register_backend
from repro.runtime.backends.reference_fast import (
    TiledBitSerialKernel,
    _recombine_einsum,
)

#: ``np.bitwise_count`` landed in numpy 2.0; without it this backend
#: simply never registers as supported (no candidate, never an error).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


class _GroupStatsPlan:
    """Per-row-block constants for the inlined stats accumulation.

    :func:`repro.cim.macro.macro_pass_stats` is closed-form in the
    batch size, so everything except the batch factor is precomputed at
    program time; the per-call accumulation then reproduces the
    reference's per-tile values and addition order with plain scalar
    arithmetic — the same operations, minus a dataclass construction
    per tile.  Integer fields are exact in any order; float fields keep
    the tile-sequential order.
    """

    def __init__(self, group, config):
        wb = config.weight_bits
        ib = config.input_bits
        rows = group.row_stop - group.row_start
        self.t_count = len(group.tiles)
        cycles_pn = []
        conv_pn = []
        macs_pn = 0
        for tile in group.tiles:
            cols = tile.macro.cols_used
            phys = cols * wb
            rounds = -(-phys // config.n_adcs)
            cycles_pn.append(ib * rounds)
            conv_pn.append(ib * phys)
            macs_pn += rows * cols
        self.cycles_pn = np.array(cycles_pn, dtype=np.int64)
        self.conv_pn = np.array(conv_pn, dtype=np.int64)
        self.cycles_pn_sum = int(self.cycles_pn.sum())
        self.conv_pn_sum = int(self.conv_pn.sum())
        self.macs_pn = macs_pn
        self.max_cycles_pn = int(self.cycles_pn.max())
        # (tiles, rows) matrix of per-row programmed ON-bit counts: one
        # matvec yields every tile's exact counts_total at once.
        self.prs_mat = np.stack(group.plane_row_sums)


def _pack_rows_words(bits: np.ndarray, rows: int) -> np.ndarray:
    """Pack ``(rows, m)`` 0/1 uint8 into ``(m, W)`` uint64 row words.

    Rows beyond ``rows`` up to the word boundary are zero bits, which
    AND away — padding can never change a count.
    """
    words = (rows + 63) // 64
    packed = np.packbits(bits, axis=0, bitorder="little")  # (ceil(rows/8), m)
    if packed.shape[0] < words * 8:
        pad = np.zeros((words * 8 - packed.shape[0], bits.shape[1]), np.uint8)
        packed = np.concatenate([packed, pad])
    return np.ascontiguousarray(packed.T).view(np.uint64)  # (m, W)


@register_backend
class PopcountBitSerialKernel(TiledBitSerialKernel):
    """Packed-word popcount execution over the shared tile groups.

    Only the count contraction differs from the base class: weight
    planes are packed once at program time (:meth:`_post_init`), input
    planes are packed per call, and the count matrix is accumulated as
    ``popcount(w & x)`` per 64-row word — exact integers, identical to
    the float32 GEMM's.  Gather, recombination and stats run through
    the inherited, veto-proven machinery.
    """

    backend_name = "popcount"

    def _post_init(self) -> None:
        config = self.engine.config
        self._packed_planes: List[np.ndarray] = []
        self._stats_plans: List[_GroupStatsPlan] = []
        for group in self._groups:
            rows = group.row_stop - group.row_start
            bits = group.planes32.astype(np.uint8).T  # (rows, wb*cols)
            self._packed_planes.append(_pack_rows_words(bits, rows))
            self._stats_plans.append(_GroupStatsPlan(group, config))
        # Cross-group einsum fusion applies when every row block carries
        # the same uniform column tiling (the row-major tile grid's
        # normal shape): the groups' quantized matrices stack into one
        # wide operand and a single recombination covers the whole call.
        groups = self._groups
        tiles0 = groups[0].tiles
        cols = tiles0[0].macro.cols_used
        self._uniform_cols = cols
        self._uniform = len(groups) > 1 and all(
            len(g.tiles) == len(tiles0)
            and all(
                t.macro.cols_used == cols and t.col_start == i * cols
                for i, t in enumerate(g.tiles)
            )
            for g in groups
        )
        self._fuse_all_cache: dict = {}

    @staticmethod
    def supported(config: MacroConfig) -> bool:
        return _HAS_BITWISE_COUNT and TiledBitSerialKernel.supported(config)

    def matmul(self, x: np.ndarray) -> Tuple[np.ndarray, MacroStats]:
        engine = self.engine
        config = engine.config
        x = np.asarray(x)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != engine.shape[0]:
            raise ValueError(
                f"input rows {x.shape[0]} do not match weight rows "
                f"{engine.shape[0]}"
            )
        low, high = config.input_range()
        if x.min() < low or x.max() > high:
            raise ValueError(
                f"input codes outside [{low}, {high}] for "
                f"{config.input_bits}-bit serial input"
            )

        ib = config.input_bits
        wb = config.weight_bits
        rows_total = x.shape[0]
        n = x.shape[1]

        codes = np.asarray(x, dtype=np.int64)
        unsigned = codes & ((1 << ib) - 1)  # two's-complement reinterpretation
        # Input bit planes as 0/1 bytes in the reference (j, vector)
        # column order — the packed words then contract to the count
        # matrix in the reference's C-contiguous (k·c, j·n) layout.
        bits8 = np.empty((rows_total, ib, n), dtype=np.uint8)
        for j in range(ib):
            bits8[:, j, :] = (unsigned >> j) & 1
        flat = bits8.reshape(rows_total, ib * n)
        # Per-row ON-bit totals: exact integers in any summation order,
        # so the popcount over codes equals the reference's float64
        # plane reduction bitwise.
        ones_per_code = np.bitwise_count(unsigned)
        in_weights = np.array([float(1 << j) for j in range(ib)])
        if config.signed_inputs:
            in_weights[ib - 1] = -float(1 << (ib - 1))

        out = np.zeros((engine.shape[1], n))
        quantized_groups = []
        # Inlined stats accumulators mirroring _StatsAccumulator field
        # by field; the per-tile values and float addition order are the
        # reference's (see _GroupStatsPlan).
        wl_fj = config.wl_energy_fj
        read_fj = config.cell.read_energy_fj
        adc_fj = config.adc.energy_fj
        per_fj = config.peripheral_energy_fj_per_cycle
        cycle_ns = config.cycle_time_ns
        cycles_t = conv_t = ra_t = macs_t = 0
        wl_t = bl_t = adc_t = per_t = lat_t = 0.0
        for group, planes, plan in zip(
            self._groups, self._packed_planes, self._stats_plans
        ):
            rows_used = group.row_stop - group.row_start
            xp = _pack_rows_words(
                flat[group.row_start : group.row_stop], rows_used
            )  # (ib*n, W)
            # popcount(w & x) per word: exact ON-cell counts, C-order
            # (wb*cols, ib*n) exactly like the float32 GEMM's result.
            counts = np.bitwise_count(planes[:, 0, None] & xp[None, :, 0])
            if rows_used > 255:
                counts = counts.astype(np.int64)
            for w in range(1, planes.shape[1]):
                counts += np.bitwise_count(planes[:, w, None] & xp[None, :, w])
            if group.lut_is_identity:
                quantized = counts.astype(np.float64)
            else:
                # Same LUT, same integer indices as the reference gather
                # — intp indexing skips numpy's buffered index cast.
                quantized = group.lut[counts.astype(np.intp)]
            quantized_groups.append(quantized)
            row_sums = ones_per_code[group.row_start : group.row_stop].sum(
                axis=1, dtype=np.float64
            )
            row_activations = int(row_sums.sum())
            # Stats accumulate in the reference's group-then-tile order;
            # integer fields are exact sums, float fields add the exact
            # per-tile reference values tile-sequentially.
            counts_totals = plan.prs_mat @ row_sums  # exact integers
            cycles_t += n * plan.cycles_pn_sum
            conv_t += n * plan.conv_pn_sum
            macs_t += n * plan.macs_pn
            ra_t += plan.t_count * row_activations
            wl_tile = row_activations * wl_fj
            bl_tiles = (counts_totals * read_fj).tolist()
            adc_tiles = ((plan.conv_pn * n) * adc_fj).tolist()
            per_tiles = ((plan.cycles_pn * n) * per_fj).tolist()
            for index in range(plan.t_count):
                wl_t += wl_tile
                bl_t += bl_tiles[index]
                adc_t += adc_tiles[index]
                per_t += per_tiles[index]
            lat_t = max(lat_t, (plan.max_cycles_pn * n) * cycle_ns)

        per_group = self._recombine_all(quantized_groups, in_weights, wb, ib, n)
        if per_group is not None:
            # One (g, columns, n) view per row block; adding the views
            # in group order is the reference accumulation sequence.
            for partial in per_group:
                out += partial
        else:
            for group, quantized in zip(self._groups, quantized_groups):
                partials = self._recombine_group(
                    group, quantized, in_weights, wb, ib, n
                )
                for index, tile in enumerate(group.tiles):
                    out[tile.col_start : tile.col_stop] += partials[index]
        total = MacroStats(
            cycles=cycles_t,
            adc_conversions=conv_t,
            row_activations=ra_t,
            macs=macs_t,
            wl_energy_fj=wl_t,
            bitline_energy_fj=bl_t,
            adc_energy_fj=adc_t,
            peripheral_energy_fj=per_t,
            latency_ns=lat_t,
        )
        return (out[:, 0] if squeeze else out), total

    def _recombine_all(self, quantized_groups, in_weights, wb, ib, n):
        """One recombination einsum over every tile of every row block.

        When the tile grid is uniform, the groups' quantized matrices
        stack into a single wide operand and the whole call recombines
        through **one** einsum — the per-shape capture/veto machinery of
        :func:`_recombine_einsum` applies to the wide operand unchanged.
        Like every fusion here the mode is decided structurally per
        operand shape, adopted only after a first-call bitwise veto
        against the inherited per-group chain, and any shape that fails
        stays on the per-group path forever (returns None).
        """
        if not self._uniform or n * ib > 256:
            return None
        groups = self._groups
        g_count = len(groups)
        t_count = len(groups[0].tiles)
        cols = self._uniform_cols
        key = (g_count, t_count, wb, cols, ib, n)
        mode = self._fuse_all_cache.get(key)
        if mode == "per-group":
            return None
        q_all = np.empty((g_count,) + quantized_groups[0].shape)
        for g, quantized in enumerate(quantized_groups):
            q_all[g] = quantized
        q_full = np.ascontiguousarray(
            q_all.reshape(g_count * t_count, wb, cols, ib, n).transpose(
                1, 0, 2, 3, 4
            )
        ).reshape(wb, g_count * t_count * cols, ib, n).transpose(2, 0, 1, 3)
        plane_weights = groups[0].tiles[0].macro._plane_weights
        flat = _recombine_einsum(
            self._path_cache, in_weights, plane_weights, q_full
        )
        view = flat.reshape(g_count, t_count * cols, n)
        if mode is None:
            expected = [
                self._recombine_group(group, quantized, in_weights, wb, ib, n)
                for group, quantized in zip(groups, quantized_groups)
            ]
            tiled = flat.reshape(g_count, t_count, cols, n)
            ok = all(
                np.array_equal(tiled[g, t], expected[g][t])
                for g in range(g_count)
                for t in range(t_count)
            )
            self._fuse_all_cache[key] = "fused" if ok else "per-group"
            if not ok:
                return None
        return view
