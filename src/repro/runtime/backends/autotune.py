"""Compile-time kernel autotuner: measure candidates, veto, keep one.

``tune_kernel`` runs at engine programming time.  It builds the
default ``reference-fast`` kernel (the oracle), runs every other
supported backend on a deterministic probe batch, **vetoes** any
candidate whose output or stats are not bit-for-bit the oracle's, and
times the survivors — the fastest one becomes the engine's kernel.
Candidates are never trusted: a backend with a perfect exactness
argument still gets compared, and a single differing bit drops it.

Decisions are cached process-wide by the engine's *structural* key
(tile shape, macro config, probe size) — two engines with the same
structure share one benchmarking pass, so programming a fleet of
same-shaped layers pays the probe cost once.  The winning name also
travels in ``.rcma`` snapshot headers (format v3), so a warm-started
process rebuilds the tuned kernel without re-benchmarking at all.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.backends.base import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
)
from repro.runtime.backends.reference_fast import TiledBitSerialKernel
from repro.runtime.cache import macro_config_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.cim.mvm import CimTiledMatmul


@dataclass(frozen=True)
class TuneReport:
    """What the autotuner decided for one engine, and why."""

    winner: str
    probe_n: int
    timings_ms: Dict[str, float] = field(default_factory=dict)
    vetoed: Tuple[str, ...] = ()
    #: True when the decision came from the process-wide structural
    #: cache (no probe was run for this engine).
    cached: bool = False

    def speedup(self) -> float:
        """Measured reference-time / winner-time (1.0 when unknown)."""
        ref = self.timings_ms.get(DEFAULT_BACKEND)
        won = self.timings_ms.get(self.winner)
        if not ref or not won:
            return 1.0
        return ref / won


_decisions: Dict[Tuple, TuneReport] = {}
_lock = threading.Lock()


def clear_tune_cache() -> None:
    """Drop all cached tuning decisions (tests and benchmarks)."""
    with _lock:
        _decisions.clear()


def _structural_key(engine: "CimTiledMatmul", probe_n: int, names) -> Tuple:
    return (engine.shape, macro_config_key(engine.config), probe_n, names)


def _probe_batch(engine: "CimTiledMatmul", probe_n: int) -> np.ndarray:
    """Deterministic integer-code probe covering the full input range."""
    rows = engine.shape[0]
    low, high = engine.config.input_range()
    rng = np.random.default_rng([rows, engine.shape[1], probe_n, high - low])
    return rng.integers(low, high + 1, size=(rows, probe_n), dtype=np.int64)


def _best_of(kernel, probe: np.ndarray, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel.matmul(probe)
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def tune_kernel(
    engine: "CimTiledMatmul",
    *,
    probe_n: int = 1,
    repeats: int = 3,
    candidates: Optional[Sequence[str]] = None,
) -> Tuple[TiledBitSerialKernel, TuneReport]:
    """Pick the fastest bitwise-identical kernel backend for ``engine``.

    Returns the built winning kernel and the :class:`TuneReport`.  The
    reference-fast kernel is always built (it is the exactness oracle
    and the fallback winner) and candidate kernels adopt its tile
    groups, so tuning never re-derives program-time layout per
    candidate.
    """
    if probe_n < 1:
        raise ValueError(f"probe_n must be >= 1, got {probe_n}")
    config = engine.config
    names = tuple(candidates) if candidates is not None else available_backends()
    reference = TiledBitSerialKernel(engine)
    key = _structural_key(engine, probe_n, names)
    with _lock:
        cached = _decisions.get(key)
    if cached is not None:
        winner = get_backend(cached.winner).adopt(reference)
        report = TuneReport(
            winner=cached.winner,
            probe_n=probe_n,
            timings_ms=dict(cached.timings_ms),
            vetoed=cached.vetoed,
            cached=True,
        )
        return winner, report

    probe = _probe_batch(engine, probe_n)
    # First call warms the per-shape einsum dispatch caches (capture +
    # veto), so the timed calls below measure the steady serving state.
    ref_out, ref_stats = reference.matmul(probe)

    kernels = {DEFAULT_BACKEND: reference}
    vetoed = []
    for name in names:
        if name == DEFAULT_BACKEND:
            continue
        cls = get_backend(name)
        if not cls.supported(config):
            continue
        kernel = cls.adopt(reference)
        out, stats = kernel.matmul(probe)
        if not (np.array_equal(out, ref_out) and stats == ref_stats):
            vetoed.append(name)
            continue
        kernels[name] = kernel

    timings = {
        name: _best_of(kernel, probe, repeats)
        for name, kernel in kernels.items()
    }
    winner_name = min(timings, key=lambda name: timings[name])
    report = TuneReport(
        winner=winner_name,
        probe_n=probe_n,
        timings_ms=timings,
        vetoed=tuple(vetoed),
        cached=False,
    )
    with _lock:
        _decisions[key] = report
    return kernels[winner_name], report
