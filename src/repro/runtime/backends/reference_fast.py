"""The ``reference-fast`` backend: fused bit-serial kernels.

This module is the long-standing optimized kernel implementation,
re-homed from ``repro.runtime.kernels`` as the default
:class:`~repro.runtime.backends.base.KernelBackend` (that module now
re-exports these names for compatibility).

:meth:`repro.cim.macro.CimMacro.matmul` is the *reference* arithmetic:
it materializes the full ``(input_bit, weight_bit, column, vector)``
ON-cell count tensor in float64 and pushes it through the bit-line and
ADC models one elementwise pass at a time.  That is exact but memory
bound — for a deployed network the ADC chain alone dominates inference
wall-clock.

The kernels here compute the *bitwise-identical* result, restructured
around three observations:

1. ON-cell counts are exact small integers (at most the activated row
   count), so the count contraction can run as a float32 GEMM with zero
   rounding error, and the input bit planes can be built as float32
   directly.
2. Bit-line clipping/saturation and ADC quantization are elementwise
   functions of an integer count in ``[0, rows_used]`` — a lookup table
   precomputed at programming time with the exact reference arithmetic
   applies both in one contiguous gather, replacing the dominant
   divide/round/clip/scale passes.
3. The final recombination einsum's floating-point reduction order
   depends on the operand's memory layout and extents (numpy switches
   between a single-shot elementwise loop and BLAS contraction chains
   by problem size), so the fast path may not substitute a reordered
   reduction.  Instead the count GEMM is oriented to emit its result
   directly in the layout the reference chain produces (C-order
   ``(weight_bit, column, input_bit, vector)``), and the recombination
   executes the reference einsum on that layout — every output bit
   matches the reference by construction, with no transpose copy.  Per
   operand shape, a one-time self-check additionally proves whether the
   einsum front-end can be bypassed (direct ``c_einsum``, or replaying
   the captured contraction list through numpy's own ``bmm_einsum``)
   while reproducing the ``optimize=True`` bits exactly; shapes that
   fail the check keep the plain einsum call.  The front-end parse
   otherwise dominates per-tile serving-sized calls.

Two further exact shortcuts: the total ON-cell count needed for energy
accounting factorizes over rows (both factors are exact integers), and
when the composed bit-line + ADC transfer is the identity on the
reachable counts (activated rows within ADC resolution) the gather is
skipped entirely.

``tests/test_runtime.py`` pins the bitwise equivalence against the
reference path across shapes, signedness and batch extents.  Anything
the fast path cannot reproduce exactly (bit-line noise draws, pulse
encodings) falls back to the reference implementation at the call site.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.cim.macro import CimMacro, MacroConfig, MacroStats, macro_pass_stats
from repro.cim.mvm import CimTiledMatmul
from repro.runtime.backends.base import KernelBackend, register_backend

try:  # numpy >= 2.3 executes pairwise einsum contractions through this
    from numpy._core.einsumfunc import bmm_einsum as _bmm_einsum
except Exception:  # pragma: no cover - older numpy
    _bmm_einsum = None


class MacroBitSerialKernel:
    """Exact fast bit-serial matmul for one programmed :class:`CimMacro`.

    Program-time artifacts (the float32 weight-plane matrix and the
    bit-line + ADC lookup table) are built once; every call then runs
    bit-plane extraction -> GEMM -> gather -> recombine.

    This is the single-macro form of the pipeline, kept as an
    independently testable validation surface against
    :meth:`CimMacro.matmul`; the production engines execute through
    :class:`TiledBitSerialKernel`, which fuses the same stages across a
    whole :class:`~repro.cim.mvm.CimTiledMatmul`.
    """

    def __init__(self, macro: CimMacro):
        config = macro.config
        if not self.supported(config):
            raise ValueError(
                "fast bit-serial kernel requires a noise-free bit line; "
                "use the reference CimMacro.matmul path instead"
            )
        self.macro = macro
        planes = macro._weight_planes  # (wb, rows, cols), 0/1 float64
        wb, rows, cols = planes.shape
        # (wb * cols, rows) float32 GEMM operand: counts stay exact.
        self._planes32 = np.ascontiguousarray(
            planes.transpose(0, 2, 1).reshape(wb * cols, rows), dtype=np.float32
        )
        # Per-row ON-cell totals: the factorized count sum for stats.
        self._plane_row_sums = planes.sum(axis=(0, 2))  # (rows,), exact ints
        # Bit-line observation + ADC quantization composed over every
        # reachable integer count, with the exact reference arithmetic.
        domain = np.arange(macro.rows_used + 1, dtype=np.float64)
        observed = config.bitline.observe(domain, None)
        self._lut = config.adc.quantize_counts(observed, float(macro.rows_used))
        self._lut_is_identity = bool(np.array_equal(self._lut, domain))
        self._idx_dtype = np.uint8 if macro.rows_used <= 255 else np.int64
        self._path_cache: dict = {}

    @staticmethod
    def supported(config: MacroConfig) -> bool:
        """True when the fast path is bit-exact for this configuration."""
        return (
            config.bitline is not None
            and config.bitline.noise_sigma_counts == 0
        )

    def matmul(self, x: np.ndarray) -> Tuple[np.ndarray, MacroStats]:
        """Bitwise-identical replacement for :meth:`CimMacro.matmul`.

        ``x`` is an integer code matrix of shape ``(rows_used, n)``.
        """
        macro = self.macro
        config = macro.config
        x = np.asarray(x)
        if x.shape[0] != macro.rows_used:
            raise ValueError(
                f"input has {x.shape[0]} rows, macro is programmed with "
                f"{macro.rows_used}"
            )
        low, high = config.input_range()
        if x.min() < low or x.max() > high:
            raise ValueError(
                f"input codes outside [{low}, {high}] for "
                f"{config.input_bits}-bit serial input"
            )

        ib = config.input_bits
        wb = config.weight_bits
        rows, cols = macro.rows_used, macro.cols_used
        n = x.shape[1]

        # Input bit planes as the float32 (rows, ib * n) GEMM operand;
        # plane values are 0/1 so float32 is exact.
        codes = np.asarray(x, dtype=np.int64)
        unsigned = codes & ((1 << ib) - 1)  # two's-complement reinterpretation
        planes32 = np.empty((rows, ib, n), dtype=np.float32)
        row_activations = 0
        for j in range(ib):
            plane = (unsigned >> j) & 1
            row_activations += int(plane.sum())
            planes32[:, j, :] = plane
        in_weights = np.array([float(1 << j) for j in range(ib)])
        if config.signed_inputs:
            in_weights[ib - 1] = -float(1 << (ib - 1))

        # counts, C-contiguous (wb * cols, ib * n) — the reference
        # chain's memory layout for (k, c, j, n); exact integers ≤ rows.
        counts = np.matmul(self._planes32, planes32.reshape(rows, ib * n))
        # The count total factorizes over rows; every factor and partial
        # sum is an exact integer, so this equals counts.sum() bitwise.
        counts_total = float(
            np.dot(planes32.sum(axis=(1, 2), dtype=np.float64), self._plane_row_sums)
        )
        # Composed bit-line + ADC transfer.  Indices are exact integers
        # in [0, rows_used]; skip the gather when the transfer is the
        # identity on that domain.
        if self._lut_is_identity:
            quantized = counts.astype(np.float64)
        else:
            quantized = self._lut[counts.astype(self._idx_dtype)]
        # View in the logical (j, k, c, n) index order — the memory
        # layout matches the reference chain's, so this is the identical
        # einsum call and reduction order, bit for bit.
        quantized = quantized.reshape(wb, cols, ib, n).transpose(2, 0, 1, 3)
        result = _recombine_einsum(
            self._path_cache, in_weights, macro._plane_weights, quantized
        )

        stats = macro_pass_stats(
            config,
            macro.rows_used,
            macro.cols_used,
            n_vectors=n,
            row_activations=row_activations,
            counts_total=counts_total,
        )
        return result, stats


def _recombine_einsum(
    path_cache: dict,
    in_weights: np.ndarray,
    plane_weights: np.ndarray,
    quantized: np.ndarray,
) -> np.ndarray:
    """The reference recombination einsum, with per-shape dispatch.

    ``np.einsum(optimize=True)`` pays a path search and parse on every
    call, which dominates per-tile serving-sized calls.  The contraction
    list it would execute depends only on the operand *shapes*, so on
    the first call for each shape that list is captured and replayed
    directly on later calls — the identical contraction sequence (same
    intermediates, same reduction order, same bits) minus the per-call
    front-end.  The classification is structural, never inferred from
    runtime values (a degenerate batch — e.g. all zeros — must not be
    able to poison the cached mode for its shape); the first call's
    numerical comparison acts only as a veto that drops the shape back
    to the plain einsum call if the replay machinery ever disagrees
    with numpy's own execution.
    """
    key = quantized.shape
    mode = path_cache.get(key)
    if mode is None:
        reference = np.einsum(
            "j,k,jkcn->cn", in_weights, plane_weights, quantized, optimize=True
        )
        steps = _capture_contraction_steps(in_weights, plane_weights, quantized)
        mode = "einsum"
        if steps is not None:
            try:
                replay = _replay_steps(steps, in_weights, plane_weights, quantized)
            except Exception:  # pragma: no cover - numpy internals moved
                replay = None
            if replay is not None and np.array_equal(reference, replay):
                mode = steps
        path_cache[key] = mode
        return reference
    if mode == "einsum":
        return np.einsum(
            "j,k,jkcn->cn", in_weights, plane_weights, quantized, optimize=True
        )
    return _replay_steps(mode, in_weights, plane_weights, quantized)


def _capture_contraction_steps(in_weights, plane_weights, quantized):
    """The pairwise contraction list ``np.einsum(optimize=True)`` would
    execute for these operands, or None when it cannot be captured."""
    if _bmm_einsum is None:
        return None
    try:
        _, contractions = np.einsum_path(
            "j,k,jkcn->cn",
            in_weights,
            plane_weights,
            quantized,
            optimize=True,
            einsum_call=True,
        )
        steps = []
        for contraction in contractions:
            inds = contraction[0]
            einsum_str = next(
                part for part in contraction if isinstance(part, str)
            )
            steps.append((tuple(inds), einsum_str))
        return tuple(steps)
    except Exception:  # pragma: no cover - numpy internals moved
        return None


def _replay_steps(steps, in_weights, plane_weights, quantized):
    """Execute a captured contraction list exactly as ``np.einsum`` does
    — ``bmm_einsum`` per pairwise step — minus the per-call path
    parsing, which dominates serving-sized tiles.  Only used for operand
    shapes where :func:`_recombine_einsum` proved the result bitwise
    equal to the ``optimize=True`` call.
    """
    operands = [in_weights, plane_weights, quantized]
    for inds, einsum_str in steps:
        tmp_operands = [operands.pop(x) for x in inds]
        if len(tmp_operands) == 2:
            new_view = _bmm_einsum(einsum_str, *tmp_operands)
        else:
            new_view = np.einsum(einsum_str, *tmp_operands, optimize=False)
        operands.append(new_view)
    return operands[-1]


class _TileGroup:
    """Tiles sharing one row block, executed through one fused GEMM.

    Column tiles of the same rows consume the same input bit planes, so
    their float32 weight-plane matrices are stacked into one operand:
    one GEMM and one ADC gather cover the whole block, and each tile's
    quantized slice is a contiguous view in exactly the per-tile
    reference layout — the per-tile einsum calls (and therefore every
    output bit) are unchanged.
    """

    def __init__(self, row_start: int, row_stop: int, tiles: List):
        self.row_start = row_start
        self.row_stop = row_stop
        self.tiles = tiles
        macro0 = tiles[0].macro
        config = macro0.config
        rows = macro0.rows_used
        wb = config.weight_bits
        self.planes32 = np.concatenate(
            [
                tile.macro._weight_planes.transpose(0, 2, 1).reshape(
                    wb * tile.macro.cols_used, rows
                )
                for tile in tiles
            ]
        ).astype(np.float32)
        self.offsets = np.cumsum(
            [0] + [wb * tile.macro.cols_used for tile in tiles]
        )
        domain = np.arange(rows + 1, dtype=np.float64)
        observed = config.bitline.observe(domain, None)
        self.lut = config.adc.quantize_counts(observed, float(rows))
        self.lut_is_identity = bool(np.array_equal(self.lut, domain))
        self.idx_dtype = np.uint8 if rows <= 255 else np.int64
        self.plane_row_sums = [
            tile.macro._weight_planes.sum(axis=(0, 2)) for tile in tiles
        ]


@register_backend
class TiledBitSerialKernel(KernelBackend):
    """Fast executor over every tile of a :class:`CimTiledMatmul`.

    Mirrors :meth:`CimTiledMatmul.matmul` exactly — per-tile partial
    sums accumulate in tile order, latency is the slowest tile — while
    fusing the bit-plane extraction (once per call), GEMM and ADC
    gather (once per row block) across tiles.
    """

    backend_name = "reference-fast"

    def __init__(self, engine: CimTiledMatmul):
        config = engine.config
        if not self.supported(config):
            raise ValueError(
                "fast bit-serial kernel requires a noise-free bit line; "
                "use the reference CimTiledMatmul.matmul path instead"
            )
        self.engine = engine
        groups: dict = {}
        for tile in engine.tiles:
            groups.setdefault((tile.row_start, tile.row_stop), []).append(tile)
        self._groups: List[_TileGroup] = [
            _TileGroup(r0, r1, tiles) for (r0, r1), tiles in groups.items()
        ]
        self._path_cache: dict = {}
        self._fused_cache: dict = {}
        self._post_init()

    def _post_init(self) -> None:
        """Subclass hook: derive extra program-time layout from the
        shared :class:`_TileGroup` list (called by both the constructor
        and :meth:`adopt`)."""

    @classmethod
    def adopt(cls, kernel: "TiledBitSerialKernel") -> "TiledBitSerialKernel":
        """Build this backend around an already-built kernel's groups.

        The :class:`_TileGroup` program-time artifacts (plane matrices,
        LUTs, row sums) are read-only and backend-independent, so the
        autotuner and the snapshot restore path share them across
        candidate backends instead of rebuilding per candidate.  Path
        and fusion caches are per-instance (they key by operand shape
        and group identity, both of which survive sharing).
        """
        if type(kernel) is cls:
            return kernel
        adopted = cls.__new__(cls)
        adopted.engine = kernel.engine
        adopted._groups = kernel._groups
        adopted._path_cache = {}
        adopted._fused_cache = {}
        adopted._post_init()
        return adopted

    @staticmethod
    def supported(config: MacroConfig) -> bool:
        return MacroBitSerialKernel.supported(config)

    def matmul(self, x: np.ndarray) -> Tuple[np.ndarray, MacroStats]:
        engine = self.engine
        config = engine.config
        x = np.asarray(x)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != engine.shape[0]:
            raise ValueError(
                f"input rows {x.shape[0]} do not match weight rows "
                f"{engine.shape[0]}"
            )
        # Reference path: each tile's macro validates its input slice;
        # the slices tile the same rows, so validating once is the same
        # check with the same error.
        low, high = config.input_range()
        if x.min() < low or x.max() > high:
            raise ValueError(
                f"input codes outside [{low}, {high}] for "
                f"{config.input_bits}-bit serial input"
            )

        ib = config.input_bits
        wb = config.weight_bits
        rows_total = x.shape[0]
        n = x.shape[1]

        # Input bit planes for the whole engine, once per call.
        codes = np.asarray(x, dtype=np.int64)
        unsigned = codes & ((1 << ib) - 1)  # two's-complement reinterpretation
        planes32 = np.empty((rows_total, ib, n), dtype=np.float32)
        for j in range(ib):
            planes32[:, j, :] = (unsigned >> j) & 1
        in_weights = np.array([float(1 << j) for j in range(ib)])
        if config.signed_inputs:
            in_weights[ib - 1] = -float(1 << (ib - 1))

        out = np.zeros((engine.shape[1], n))
        # Scalar accumulators: same per-field addition order as the
        # reference's sequential MacroStats.__add__ chain.
        acc = _StatsAccumulator()
        for group in self._groups:
            block = planes32[group.row_start : group.row_stop]
            rows_used = group.row_stop - group.row_start
            # One GEMM and one gather for every column tile of the block.
            counts = np.matmul(
                group.planes32, block.reshape(rows_used, ib * n)
            )  # C-contiguous (sum of wb*cols, ib*n): stacked (k, c, j, n)
            if group.lut_is_identity:
                quantized = counts.astype(np.float64)
            else:
                quantized = group.lut[counts.astype(group.idx_dtype)]
            # Per-row plane totals: exact integers, shared by the block.
            row_sums = block.sum(axis=(1, 2), dtype=np.float64)
            row_activations = int(row_sums.sum())
            partials = self._recombine_group(
                group, quantized, in_weights, wb, ib, n
            )
            for index, tile in enumerate(group.tiles):
                macro = tile.macro
                counts_total = float(
                    np.dot(row_sums, group.plane_row_sums[index])
                )
                out[tile.col_start : tile.col_stop] += partials[index]
                acc.add(
                    macro_pass_stats(
                        macro.config,
                        macro.rows_used,
                        macro.cols_used,
                        n_vectors=n,
                        row_activations=row_activations,
                        counts_total=counts_total,
                    )
                )
        total = acc.finish()
        return (out[:, 0] if squeeze else out), total

    def _recombine_per_tile(self, group, quantized, in_weights, wb, ib, n):
        """The reference recombination: one einsum call per column tile.

        Each tile's slice of the block's quantized matrix is C-contiguous
        in the exact per-tile reference layout, viewed as (j, k, c, n).
        """
        partials = []
        for index, tile in enumerate(group.tiles):
            cols = tile.macro.cols_used
            q_tile = quantized[
                group.offsets[index] : group.offsets[index + 1]
            ].reshape(wb, cols, ib, n).transpose(2, 0, 1, 3)
            partials.append(
                _recombine_einsum(
                    self._path_cache, in_weights, tile.macro._plane_weights, q_tile
                )
            )
        return partials

    def _recombine_group(self, group, quantized, in_weights, wb, ib, n):
        """Recombine every column tile of a row block, fused when proven.

        Serving-sized calls are dominated by per-tile einsum dispatch, so
        equal-width column tiles are recombined in **one** einsum over the
        concatenated columns.  Like the per-shape dispatch in
        :func:`_recombine_einsum`, the fused mode is adopted per
        ``(group, n)`` only after a first-call veto proved its result
        bitwise equal to the per-tile reference calls — einsum may pick a
        different contraction order for the wider operand, and any shape
        where that changes one bit stays on the per-tile path forever.
        """
        tiles = group.tiles
        # Fusion trades one reorder copy of the block for T-1 fewer
        # einsum dispatches: a win only while dispatch dominates, i.e.
        # for serving-sized vector counts.  The guard is purely shape-
        # based (never value-based), so which path runs is deterministic
        # — and both paths are veto-proven bitwise equal anyway.
        if len(tiles) == 1 or n * ib > 256:
            return self._recombine_per_tile(group, quantized, in_weights, wb, ib, n)
        key = (id(group), n)
        mode = self._fused_cache.get(key)
        if mode == "per-tile":
            return self._recombine_per_tile(group, quantized, in_weights, wb, ib, n)
        cols = tiles[0].macro.cols_used
        uniform = all(tile.macro.cols_used == cols for tile in tiles)
        if mode is None:
            partials = self._recombine_per_tile(
                group, quantized, in_weights, wb, ib, n
            )
            mode = "per-tile"
            if uniform:
                fused = self._recombine_fused(
                    tiles, quantized, in_weights, wb, ib, n, cols
                )
                if all(
                    np.array_equal(a, b) for a, b in zip(partials, fused)
                ):
                    mode = "fused"
            self._fused_cache[key] = mode
            return partials
        return self._recombine_fused(tiles, quantized, in_weights, wb, ib, n, cols)

    def _recombine_fused(self, tiles, quantized, in_weights, wb, ib, n, cols):
        """One einsum over the whole row block's columns.

        The block's quantized matrix stacks tiles as (t, k, c) chunks;
        reordering to (k, t·c) makes the group one wide logical tile, and
        slicing the result recovers each tile's partial.
        """
        t = len(tiles)
        q_fused = np.ascontiguousarray(
            quantized.reshape(t, wb, cols, ib, n).transpose(1, 0, 2, 3, 4)
        ).reshape(wb, t * cols, ib, n).transpose(2, 0, 1, 3)
        result = _recombine_einsum(
            self._path_cache, in_weights, tiles[0].macro._plane_weights, q_fused
        )
        return [result[i * cols : (i + 1) * cols] for i in range(t)]


class _StatsAccumulator:
    """Accumulates per-tile macro stats with the reference's exact
    field-by-field addition order; wall-clock latency is the slowest
    tile, matching :meth:`CimTiledMatmul.matmul`."""

    def __init__(self):
        self.cycles = 0
        self.adc_conversions = 0
        self.row_activations = 0
        self.macs = 0
        self.wl_energy_fj = 0.0
        self.bitline_energy_fj = 0.0
        self.adc_energy_fj = 0.0
        self.peripheral_energy_fj = 0.0
        self.max_latency_ns = 0.0

    def add(self, stats: MacroStats) -> None:
        self.cycles += stats.cycles
        self.adc_conversions += stats.adc_conversions
        self.row_activations += stats.row_activations
        self.macs += stats.macs
        self.wl_energy_fj += stats.wl_energy_fj
        self.bitline_energy_fj += stats.bitline_energy_fj
        self.adc_energy_fj += stats.adc_energy_fj
        self.peripheral_energy_fj += stats.peripheral_energy_fj
        self.max_latency_ns = max(self.max_latency_ns, stats.latency_ns)

    def finish(self) -> MacroStats:
        return MacroStats(
            cycles=self.cycles,
            adc_conversions=self.adc_conversions,
            row_activations=self.row_activations,
            macs=self.macs,
            wl_energy_fj=self.wl_energy_fj,
            bitline_energy_fj=self.bitline_energy_fj,
            adc_energy_fj=self.adc_energy_fj,
            peripheral_energy_fj=self.peripheral_energy_fj,
            latency_ns=self.max_latency_ns,
        )
