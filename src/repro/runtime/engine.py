"""Programmed layer engines: quantize + place weights once, execute many.

A :class:`ProgrammedLinear` / :class:`ProgrammedConv` is the software
image of a set of fabricated subarrays: the float weights are
per-channel quantized, decomposed into bit planes, and placed onto
:class:`~repro.cim.mvm.CimTiledMatmul` tiles exactly once, at
*programming* time.  Execution then only quantizes the incoming
activation batch and streams it through the programmed tiles — through
the fast exact kernel when the configuration allows, or through the
reference macro path (with an execution-time RNG for bit-line noise
draws) when it does not.

:func:`linear_engine` / :func:`conv_engine` are the cache-aware
constructors: they key the engine by ``(layer id, weight fingerprint,
config)`` and share programmed engines across calls, sessions and
models through an :class:`~repro.runtime.cache.EngineCache`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from repro.cim.encoding import ActivationEncoding
from repro.cim.macro import MacroConfig, MacroStats
from repro.cim.mvm import CimTiledMatmul, validate_groups
from repro.nn import functional as F
from repro.quant.quantizer import QuantSpec, quantize
from repro.runtime.backends import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    TuneReport,
    get_backend,
    tune_kernel,
)
from repro.runtime.cache import (
    EngineCache,
    EngineKey,
    macro_config_key,
    resolve_cache,
    weight_fingerprint,
)
from repro.runtime.kernels import TiledBitSerialKernel


class ProgrammedLinear:
    """``y = x @ weight.T`` with the weights programmed into CiM tiles.

    Programming (this constructor) quantizes the float weights with the
    same per-channel spec the functional path uses and builds the tiled
    engine once.  :meth:`execute` is the per-batch hot path.

    ``signed_inputs`` is fixed at programming time: the macro's input
    bit-plane weights (two's complement MSB) are part of the programmed
    configuration, exactly as on silicon.

    ``backend`` selects the execution kernel: ``None`` keeps the
    default ``reference-fast`` kernel, an explicit registered name
    builds that backend, and ``"auto"`` runs the compile-time autotuner
    (:func:`repro.runtime.backends.tune_kernel`) — every choice is held
    to bitwise identity with the reference walk, so the selection is a
    pure speed decision.  ``tune_probe_n`` is the probe batch width the
    autotuner benchmarks with; pick the serving batch size you expect.
    """

    def __init__(
        self,
        weight: np.ndarray,
        config: Optional[MacroConfig] = None,
        activation_bits: int = 8,
        signed_inputs: bool = False,
        backend: Optional[str] = None,
        tune_probe_n: int = 1,
    ):
        config = config if config is not None else MacroConfig()
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2-D (out, in), got {weight.shape}")
        self.config = config
        self.activation_bits = int(activation_bits)
        self.signed_inputs = bool(signed_inputs)
        self.out_features, self.in_features = weight.shape

        w_spec = QuantSpec(bits=config.weight_bits, signed=True, per_channel_axis=0)
        self.w_codes, self.w_scale = quantize(weight, w_spec)

        # Snapshot the bit-line model — the only mutable piece of the
        # config (CellSpec and AdcSpec are frozen) — so later in-place
        # mutation of the caller's bit line cannot desynchronize the
        # programmed kernel's LUT.
        bitline = replace(config.bitline) if config.bitline is not None else None
        self.run_config = replace(
            config,
            input_bits=self.activation_bits,
            signed_weights=True,
            signed_inputs=self.signed_inputs,
            bitline=bitline,
        )
        self.engine = CimTiledMatmul(self.w_codes.T, self.run_config)
        #: What the caller asked for (``None`` / ``"auto"`` / a name) —
        #: part of the engine's cache identity, and distinct from the
        #: resolved ``kernel_backend`` below.
        self.backend_request: Optional[str] = backend
        #: Name of the kernel backend executing this engine (``None``
        #: when the configuration forces the reference macro path).
        self.kernel_backend: Optional[str] = None
        #: True when the backend was chosen by the compile-time
        #: autotuner rather than pinned by the caller.
        self.tuned: bool = False
        #: The autotuner's :class:`TuneReport` when ``tuned`` is True.
        self.tune_report: Optional[TuneReport] = None
        self._kernel = None
        if backend == AUTO_BACKEND:
            if TiledBitSerialKernel.supported(self.run_config):
                self._kernel, self.tune_report = tune_kernel(
                    self.engine, probe_n=int(tune_probe_n)
                )
                self.kernel_backend = self.tune_report.winner
                self.tuned = True
        else:
            cls = (
                TiledBitSerialKernel
                if backend is None
                else get_backend(backend)
            )
            if cls.supported(self.run_config):
                self._kernel = cls(self.engine)
                self.kernel_backend = (
                    DEFAULT_BACKEND if backend is None else backend
                )

    @property
    def n_subarrays(self) -> int:
        return self.engine.n_subarrays

    def execute(
        self,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        encoding: Optional[ActivationEncoding] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Run a float batch ``(N, in_features)`` through the tiles.

        Bitwise identical to the seed per-call functional path for the
        same inputs, configuration and RNG.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (N, {self.in_features}), got {x.shape}"
            )
        if not self.signed_inputs and x.size and bool((x < 0).any()):
            raise ValueError(
                "engine is programmed for unsigned activations but the "
                "input carries negative values; program a signed-input "
                "engine for this layer"
            )
        act_spec = QuantSpec(bits=self.activation_bits, signed=self.signed_inputs)
        x_codes, x_scale = quantize(x, act_spec)
        if encoding is None and self._kernel is not None:
            y_codes, stats = self._kernel.matmul(x_codes.T)
        else:
            rng = rng if rng is not None else np.random.default_rng()
            y_codes, stats = self.engine.matmul(
                x_codes.T, encoding=encoding, rng=rng
            )
        scale = float(x_scale) * self.w_scale.reshape(-1, 1)
        return (y_codes * scale).T, stats


def conv_patches(
    x: np.ndarray,
    weight_shape: Tuple[int, int, int, int],
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """im2col patches ``(N*P, C*kh*kw)`` and the output spatial shape.

    Signedness of a convolution's activations must be decided on these
    patches — not the raw input — because a stride larger than the
    kernel can skip the only negative pixels; the seed path quantized
    exactly the patches.
    """
    x = np.asarray(x, dtype=np.float64)
    _, ic, kh, kw = weight_shape
    cols, out_hw = F.im2col(
        x, (kh, kw), (stride, stride), (padding, padding)
    )  # (N, C*kh*kw, P)
    return cols.transpose(0, 2, 1).reshape(-1, ic * kh * kw), out_hw


class ProgrammedConv:
    """A convolution programmed as an im2col :class:`ProgrammedLinear`."""

    def __init__(
        self,
        weight: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        config: Optional[MacroConfig] = None,
        activation_bits: int = 8,
        signed_inputs: bool = False,
        backend: Optional[str] = None,
        tune_probe_n: int = 64,
    ):
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4:
            raise ValueError(f"weight must be 4-D (O, C, kh, kw), got {weight.shape}")
        self.out_channels, self.in_channels, self.kh, self.kw = weight.shape
        self.stride = int(stride)
        self.padding = int(padding)
        # Convolutions execute im2col patch batches — hundreds to
        # thousands of vectors per call — so the tuning probe defaults
        # wide; a batch-1 probe would crown a kernel tuned for the
        # wrong regime.
        self.linear = ProgrammedLinear(
            weight.reshape(self.out_channels, -1),
            config,
            activation_bits,
            signed_inputs,
            backend=backend,
            tune_probe_n=tune_probe_n,
        )

    @property
    def n_subarrays(self) -> int:
        return self.linear.n_subarrays

    @property
    def backend_request(self) -> Optional[str]:
        return self.linear.backend_request

    @property
    def kernel_backend(self) -> Optional[str]:
        return self.linear.kernel_backend

    @property
    def tuned(self) -> bool:
        return self.linear.tuned

    @property
    def tune_report(self) -> Optional[TuneReport]:
        return self.linear.tune_report

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        return (self.out_channels, self.in_channels, self.kh, self.kw)

    def execute(
        self,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        encoding: Optional[ActivationEncoding] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Run a float batch ``(N, C, H, W)`` through the tiles."""
        x = np.asarray(x, dtype=np.float64)
        patches, out_hw = conv_patches(
            x, self.weight_shape, self.stride, self.padding
        )
        return self.execute_patches(
            patches, x.shape[0], out_hw, rng=rng, encoding=encoding
        )

    def execute_patches(
        self,
        patches: np.ndarray,
        n_samples: int,
        out_hw: Tuple[int, int],
        rng: Optional[np.random.Generator] = None,
        encoding: Optional[ActivationEncoding] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Run precomputed :func:`conv_patches` through the tiles."""
        out_h, out_w = out_hw
        flat, stats = self.linear.execute(patches, rng=rng, encoding=encoding)
        out = flat.reshape(n_samples, out_h * out_w, self.out_channels).transpose(
            0, 2, 1
        )
        return out.reshape(n_samples, self.out_channels, out_h, out_w), stats


def grouped_conv_execute(
    x: np.ndarray,
    weight_shape: Tuple[int, int, int, int],
    groups: int,
    stride: int,
    padding: int,
    engine_for,
    rng: Optional[np.random.Generator] = None,
    encoding: Optional[ActivationEncoding] = None,
) -> Tuple[np.ndarray, MacroStats]:
    """Exact grouped-convolution lowering over per-group conv engines.

    ``weight_shape`` is the full conv's ``(out_channels, in_per_group,
    kh, kw)``; ``engine_for(g, signed)`` returns the
    :class:`ProgrammedConv` for group ``g`` programmed for that input
    signedness (callers route it through the engine cache, so each
    group's macros are programmed once and shared).

    Semantics — shared bit for bit by the compiled runtime and
    :func:`repro.cim.mvm.reference_cim_conv2d`: each group is an
    independent convolution over its channel slice, with **per-group**
    batch-global activation quantization and **per-group** signedness
    (decided on that group's im2col patches).  Groups execute in index
    order against the shared ``rng``, so bit-line-noise draws are
    deterministic group-major.  Stats sum over groups (sequential
    word-line streaming; tiles within a group still run in parallel).
    """
    x = np.asarray(x, dtype=np.float64)
    oc, icg, kh, kw = weight_shape
    validate_groups(oc, icg, groups, x.shape[1])
    outs = []
    total = MacroStats()
    for g in range(groups):
        xg = x[:, g * icg : (g + 1) * icg]
        patches, out_hw = conv_patches(xg, (oc // groups, icg, kh, kw), stride, padding)
        signed = bool(patches.size and (patches < 0).any())
        engine = engine_for(g, signed)
        out, stats = engine.execute_patches(
            patches, x.shape[0], out_hw, rng=rng, encoding=encoding
        )
        total = total + stats
        outs.append(out)
    return np.concatenate(outs, axis=1), total


# ----------------------------------------------------------------------
# Cache-aware constructors
# ----------------------------------------------------------------------
def _backend_key_suffix(backend: Optional[str]) -> Tuple:
    """Key extension for a backend request.

    ``None`` (the default kernel) extends nothing, so every key minted
    before the backend layer existed — including those already baked
    into ``.rcma`` artifact digests — is unchanged.
    """
    return () if backend is None else ("backend", str(backend))


def linear_engine_key(
    weight: np.ndarray,
    config: MacroConfig,
    activation_bits: int,
    signed_inputs: bool,
    layer_id: str = "functional",
    fingerprint: Optional[str] = None,
    backend: Optional[str] = None,
) -> EngineKey:
    return EngineKey(
        layer_id=layer_id,
        weight_hash=fingerprint if fingerprint is not None else weight_fingerprint(weight),
        config_key=(
            "linear",
            macro_config_key(config),
            int(activation_bits),
            bool(signed_inputs),
        )
        + _backend_key_suffix(backend),
    )


def conv_engine_key(
    weight: np.ndarray,
    stride: int,
    padding: int,
    config: MacroConfig,
    activation_bits: int,
    signed_inputs: bool,
    layer_id: str = "functional",
    fingerprint: Optional[str] = None,
    backend: Optional[str] = None,
) -> EngineKey:
    return EngineKey(
        layer_id=layer_id,
        weight_hash=fingerprint if fingerprint is not None else weight_fingerprint(weight),
        config_key=(
            "conv",
            macro_config_key(config),
            int(activation_bits),
            bool(signed_inputs),
            int(stride),
            int(padding),
        )
        + _backend_key_suffix(backend),
    )


def linear_engine(
    weight: np.ndarray,
    config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    signed_inputs: bool = False,
    *,
    layer_id: str = "functional",
    cache: Optional[EngineCache] = None,
    fingerprint: Optional[str] = None,
    backend: Optional[str] = None,
    tune_probe_n: int = 1,
) -> ProgrammedLinear:
    """Fetch (or program on first use) a cached linear engine."""
    config = config if config is not None else MacroConfig()
    cache = resolve_cache(cache)
    key = linear_engine_key(
        weight, config, activation_bits, signed_inputs, layer_id, fingerprint,
        backend=backend,
    )
    return cache.get_or_program(
        key,
        lambda: ProgrammedLinear(
            weight, config, activation_bits, signed_inputs,
            backend=backend, tune_probe_n=tune_probe_n,
        ),
    )


def conv_engine(
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    signed_inputs: bool = False,
    *,
    layer_id: str = "functional",
    cache: Optional[EngineCache] = None,
    fingerprint: Optional[str] = None,
    backend: Optional[str] = None,
    tune_probe_n: int = 64,
) -> ProgrammedConv:
    """Fetch (or program on first use) a cached convolution engine."""
    config = config if config is not None else MacroConfig()
    cache = resolve_cache(cache)
    key = conv_engine_key(
        weight, stride, padding, config, activation_bits, signed_inputs,
        layer_id, fingerprint, backend=backend,
    )
    return cache.get_or_program(
        key,
        lambda: ProgrammedConv(
            weight, stride, padding, config, activation_bits, signed_inputs,
            backend=backend, tune_probe_n=tune_probe_n,
        ),
    )
