"""Model programming: batch-norm folding and ROM/SRAM placement.

Everything in this module happens once per model, at *programming* time
— the software analogue of mask generation for the ROM-CiM chiplet:

* :func:`fold_batchnorm` — fold (Conv2d -> BatchNorm2d) pairs into the
  convolution, as any fixed-weight deployment must (ROM weights cannot
  carry live BN statistics).
* :func:`build_report` — record per-layer ROM/SRAM placement following
  the YOLoC chip (Fig. 9): frozen convolutions/linears on ROM macros,
  trainable layers on SRAM macros, ReBranch trunk + projections on ROM
  with the res-conv on SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro import nn
from repro.obs.log import get_logger
from repro.rebranch.branch import ReBranchConv2d

_log = get_logger("runtime.programming")


# ----------------------------------------------------------------------
# Batch-norm folding
# ----------------------------------------------------------------------
def fold_batchnorm(model: nn.Module) -> int:
    """Fold every (Conv2d -> BatchNorm2d) pair inside ConvBNAct-style
    blocks into the convolution's weights and bias, in place.

    Uses the running statistics, so the model must have been trained (or
    at least run) in training mode first.  After folding, the BN module
    is replaced by Identity.  Returns the number of folded pairs.
    """
    folded = 0
    for module in model.modules():
        pairs = _conv_bn_pairs(module)
        for parent, conv_name, bn_name in pairs:
            conv = getattr(parent, conv_name)
            bn = getattr(parent, bn_name)
            _fold_pair(conv, bn)
            setattr(parent, bn_name, nn.Identity())
            folded += 1
    if folded:
        _log.debug("folded %d conv/batchnorm pairs", folded)
    return folded


def _conv_bn_pairs(module: nn.Module) -> List[Tuple[nn.Module, str, str]]:
    """Adjacent (Conv2d, BatchNorm2d) children of ``module``."""
    names = list(module._modules.items())
    pairs = []
    for (name_a, child_a), (name_b, child_b) in zip(names, names[1:]):
        if isinstance(child_a, nn.Conv2d) and isinstance(child_b, nn.BatchNorm2d):
            pairs.append((module, name_a, name_b))
    return pairs


def _fold_pair(conv: nn.Conv2d, bn: nn.BatchNorm2d) -> None:
    scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
    conv.weight.data = conv.weight.data * scale.reshape(-1, 1, 1, 1)
    bias = conv.bias.data if conv.bias is not None else np.zeros(conv.out_channels)
    new_bias = (bias - bn.running_mean) * scale + bn.bias.data
    if conv.bias is None:
        conv.bias = nn.Parameter(new_bias)
        conv.bias.requires_grad = conv.weight.requires_grad
    else:
        conv.bias.data = new_bias


def validate_deployable(model: nn.Module) -> None:
    """Refuse models whose BN has not been folded away."""
    for name, module in model.named_modules():
        if isinstance(module, nn.BatchNorm2d):
            raise ValueError(
                f"unfolded BatchNorm2d at {name!r}: run fold_batchnorm() "
                "before deploying (ROM weights cannot carry live BN)"
            )


# ----------------------------------------------------------------------
# Placement report
# ----------------------------------------------------------------------
@dataclass
class DeployedLayerInfo:
    """Placement record of one weight layer."""

    name: str
    kind: str  # "conv" | "linear" | "rebranch"
    memory: str  # "rom" | "sram" | "rom+sram"
    weight_bits: int


@dataclass
class DeploymentReport:
    """Aggregate outcome of one deployment."""

    layers: List[DeployedLayerInfo] = field(default_factory=list)
    rom_weight_bits: int = 0
    sram_weight_bits: int = 0

    @property
    def rom_fraction(self) -> float:
        total = self.rom_weight_bits + self.sram_weight_bits
        return self.rom_weight_bits / total if total else 0.0


def inside_rebranch(model: nn.Module, name: str) -> bool:
    """True when the named module lives inside a ReBranchConv2d."""
    parts = name.split(".")
    node = model
    for part in parts[:-1]:
        node = node._modules[part]
        if isinstance(node, ReBranchConv2d):
            return True
    return False


def build_report(
    model: nn.Module, rom_weight_bits_per_weight: int, sram_weight_bits_per_weight: int
) -> DeploymentReport:
    """ROM/SRAM placement of every weight layer (YOLoC Fig. 9 policy)."""
    report = DeploymentReport()
    for name, module in model.named_modules():
        if isinstance(module, ReBranchConv2d):
            bits = (
                module.trunk.weight.size
                + module.compress.weight.size
                + module.decompress.weight.size
            ) * rom_weight_bits_per_weight
            sram_bits = module.res_conv.weight.size * sram_weight_bits_per_weight
            report.rom_weight_bits += bits
            report.sram_weight_bits += sram_bits
            report.layers.append(
                DeployedLayerInfo(name, "rebranch", "rom+sram", bits + sram_bits)
            )
        elif isinstance(module, nn.Conv2d) or isinstance(module, nn.Linear):
            if inside_rebranch(model, name):
                continue
            kind = "conv" if isinstance(module, nn.Conv2d) else "linear"
            trainable = module.weight.requires_grad
            per_weight = (
                sram_weight_bits_per_weight if trainable else rom_weight_bits_per_weight
            )
            bits = module.weight.size * per_weight
            if trainable:
                report.sram_weight_bits += bits
            else:
                report.rom_weight_bits += bits
            report.layers.append(
                DeployedLayerInfo(name, kind, "sram" if trainable else "rom", bits)
            )
    return report
