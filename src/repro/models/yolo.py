"""YOLO-style single-stage object detector.

A YOLOv1-flavoured grid head on top of a DarkNet backbone: each of the
S x S cells predicts one box ``(tx, ty, tw, th, tobj)`` plus class
logits.  This is deliberately the simplest member of the YOLO family —
enough to train on the synthetic detection data and to exercise the
full YOLoC deployment path (backbone in ROM-CiM, prediction head in
SRAM-CiM, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.models.common import ConvBNAct, scaled
from repro.models.darknet import DarknetBackbone, darknet19, darknet_tiny


@dataclass
class Detection:
    """One decoded box in normalized [0, 1] image coordinates."""

    class_id: int
    score: float
    x1: float
    y1: float
    x2: float
    y2: float

    def as_array(self) -> np.ndarray:
        return np.array([self.x1, self.y1, self.x2, self.y2])


class YoloDetector(nn.Module):
    """Backbone + detection head predicting (5 + num_classes) per cell."""

    def __init__(
        self,
        backbone: DarknetBackbone,
        num_classes: int,
        head_channels: int = 1024,
        deep_head: bool = False,
        width_mult: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        head_w = scaled(head_channels, width_mult)
        self.backbone = backbone
        layers = [ConvBNAct(backbone.out_channels, head_w, 3, act="leaky", rng=rng)]
        if deep_head:
            # YOLOv2 stacks two further 3x3/1024 convs before prediction,
            # bringing the full model to the paper's ~46M weights.
            layers.append(ConvBNAct(head_w, head_w, 3, act="leaky", rng=rng))
            layers.append(ConvBNAct(head_w, head_w, 3, act="leaky", rng=rng))
        layers.append(nn.Conv2d(head_w, 5 + num_classes, 1, rng=rng))
        self.head = nn.Sequential(*layers)
        self.num_classes = num_classes

    def forward(self, x):
        """Return raw predictions with shape (N, 5 + C, S, S)."""
        return self.head(self.backbone(x))

    #: backbone then head — the registration-order chain.
    plan_forward = nn.plan_serial

    def prediction_head(self) -> nn.Module:
        """The part YOLoC keeps trainable in SRAM-CiM (Fig. 9)."""
        return self.head


def yolo_v2(
    num_classes: int = 20,
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> YoloDetector:
    """YOLO with the DarkNet-19 backbone (the paper's headline model)."""
    rng = rng if rng is not None else np.random.default_rng()
    backbone = darknet19(in_channels, width_mult, rng)
    return YoloDetector(
        backbone, num_classes, deep_head=True, width_mult=width_mult, rng=rng
    )


def tiny_yolo(
    num_classes: int = 20,
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> YoloDetector:
    """Tiny-YOLO: the smaller backbone in the same framework."""
    rng = rng if rng is not None else np.random.default_rng()
    backbone = darknet_tiny(in_channels, width_mult, rng)
    return YoloDetector(backbone, num_classes, width_mult=width_mult, rng=rng)


# ----------------------------------------------------------------------
# Target encoding / loss / decoding
# ----------------------------------------------------------------------
def encode_targets(
    boxes_per_image: Sequence[np.ndarray],
    labels_per_image: Sequence[np.ndarray],
    grid_size: int,
    num_classes: int,
) -> np.ndarray:
    """Encode ground truth into the (N, 5 + C, S, S) grid tensor.

    ``boxes`` are (x1, y1, x2, y2) in normalized [0, 1] coordinates.
    The cell containing a box centre is responsible for it; channels are
    ``[tx, ty, w, h, obj, one-hot classes]`` with tx/ty the offset of the
    centre inside the cell.
    """
    n = len(boxes_per_image)
    target = np.zeros((n, 5 + num_classes, grid_size, grid_size))
    for image_index, (boxes, labels) in enumerate(zip(boxes_per_image, labels_per_image)):
        for box, label in zip(boxes, labels):
            x1, y1, x2, y2 = box
            cx, cy = (x1 + x2) / 2, (y1 + y2) / 2
            w, h = x2 - x1, y2 - y1
            if w <= 0 or h <= 0:
                raise ValueError(f"degenerate box {box}")
            col = min(int(cx * grid_size), grid_size - 1)
            row = min(int(cy * grid_size), grid_size - 1)
            target[image_index, 0, row, col] = cx * grid_size - col
            target[image_index, 1, row, col] = cy * grid_size - row
            target[image_index, 2, row, col] = w
            target[image_index, 3, row, col] = h
            target[image_index, 4, row, col] = 1.0
            target[image_index, 5 + int(label), row, col] = 1.0
    return target


def yolo_loss(
    predictions: "nn.Tensor",
    targets: np.ndarray,
    lambda_coord: float = 5.0,
    lambda_noobj: float = 0.5,
) -> "nn.Tensor":
    """YOLOv1-style composite loss.

    Coordinate and size terms apply only to responsible cells
    (``lambda_coord`` weighted); the objectness BCE down-weights empty
    cells by ``lambda_noobj``; classification is a per-cell BCE over the
    one-hot class vector on responsible cells.
    """
    obj_mask = targets[:, 4:5]  # (N,1,S,S)
    n_cells = targets.shape[0] * targets.shape[2] * targets.shape[3]
    n_obj = max(obj_mask.sum(), 1.0)

    pred_xy = nn.sigmoid(predictions[:, 0:2])
    pred_wh = nn.sigmoid(predictions[:, 2:4])
    pred_obj = predictions[:, 4:5]
    pred_cls = predictions[:, 5:]

    diff_xy = (pred_xy - nn.Tensor(targets[:, 0:2])) * nn.Tensor(obj_mask)
    diff_wh = (
        (pred_wh + 1e-8) ** 0.5 - nn.Tensor(np.sqrt(targets[:, 2:4] + 1e-8))
    ) * nn.Tensor(obj_mask)
    coord = ((diff_xy * diff_xy).sum() + (diff_wh * diff_wh).sum()) * (1.0 / n_obj)

    obj_weight = obj_mask + lambda_noobj * (1.0 - obj_mask)
    objectness = nn.binary_cross_entropy_with_logits(
        pred_obj, targets[:, 4:5], weight=obj_weight
    ) * (n_cells / n_obj)

    cls_bce = nn.binary_cross_entropy_with_logits(
        pred_cls,
        targets[:, 5:],
        weight=np.broadcast_to(obj_mask, targets[:, 5:].shape),
    ) * (n_cells * targets[:, 5:].shape[1] / n_obj)

    return lambda_coord * coord + objectness + cls_bce


def decode_predictions(
    raw: np.ndarray,
    score_threshold: float = 0.3,
    nms_iou: float = 0.5,
    max_detections: int = 20,
) -> List[List[Detection]]:
    """Decode raw (N, 5 + C, S, S) outputs into per-image detection lists.

    Applies sigmoid to xy/wh/objectness, softmax over classes, score
    thresholding, and class-wise non-maximum suppression.
    """
    from repro.eval.detection import nms  # local import avoids a cycle

    n, channels, s, _ = raw.shape
    num_classes = channels - 5
    cols, rows = np.meshgrid(np.arange(s), np.arange(s))
    results: List[List[Detection]] = []
    for image_index in range(n):
        grid = raw[image_index]
        xy = 1 / (1 + np.exp(-grid[0:2]))
        wh = 1 / (1 + np.exp(-grid[2:4]))
        obj = 1 / (1 + np.exp(-grid[4]))
        logits = grid[5:]
        logits = logits - logits.max(axis=0, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=0, keepdims=True)

        cx = (cols + xy[0]) / s
        cy = (rows + xy[1]) / s
        w, h = wh[0], wh[1]
        class_id = probs.argmax(axis=0)
        score = obj * probs.max(axis=0)

        keep = score > score_threshold
        detections = [
            Detection(
                class_id=int(class_id[r, c]),
                score=float(score[r, c]),
                x1=float(np.clip(cx[r, c] - w[r, c] / 2, 0, 1)),
                y1=float(np.clip(cy[r, c] - h[r, c] / 2, 0, 1)),
                x2=float(np.clip(cx[r, c] + w[r, c] / 2, 0, 1)),
                y2=float(np.clip(cy[r, c] + h[r, c] / 2, 0, 1)),
            )
            for r, c in zip(*np.nonzero(keep))
        ]
        results.append(nms(detections, nms_iou)[:max_detections])
    return results
