"""VGG-8 classifier.

The 8-layer VGG variant common in the CiM literature (and matching the
layer names in the paper's Fig. 6(b): conv-1/2 128ch, conv-3/4 256ch,
conv-5/6 512ch): six 3x3 convolutions in three max-pooled stages followed
by two fully-connected layers.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.models.common import ConvBNAct, scaled

VGG8_CHANNELS = (128, 128, 256, 256, 512, 512)
VGG8_HIDDEN = 1024


class VGG(nn.Module):
    """Configurable VGG-style classifier.

    ``features`` is the convolutional feature extractor (pairs of
    :class:`ConvBNAct` with max-pooling between stages), ``classifier``
    the fully-connected head.  Global average pooling between them makes
    the model input-size agnostic, which the scaled training experiments
    rely on.
    """

    def __init__(
        self,
        channels=VGG8_CHANNELS,
        hidden: int = VGG8_HIDDEN,
        num_classes: int = 100,
        in_channels: int = 3,
        width_mult: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        if len(channels) % 2 != 0:
            raise ValueError("VGG expects an even number of conv layers (2 per stage)")
        widths = [scaled(c, width_mult) for c in channels]
        hidden_w = scaled(hidden, width_mult)

        layers: List[nn.Module] = []
        previous = in_channels
        for stage in range(len(widths) // 2):
            c_a, c_b = widths[2 * stage], widths[2 * stage + 1]
            layers.append(ConvBNAct(previous, c_a, 3, rng=rng))
            layers.append(ConvBNAct(c_a, c_b, 3, rng=rng))
            layers.append(nn.MaxPool2d(2))
            previous = c_b
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.classifier = nn.Sequential(
            nn.Linear(previous, hidden_w, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden_w, num_classes, rng=rng),
        )
        self.num_classes = num_classes
        self.conv_channels = widths

    def forward(self, x):
        x = self.features(x)
        x = self.flatten(self.pool(x))
        return self.classifier(x)

    #: forward applies the children in registration order.
    plan_forward = nn.plan_serial

    def feature_extractor(self) -> nn.Module:
        """The part the paper deploys in ROM-CiM for Options I/II."""
        return self.features


def vgg8(
    num_classes: int = 100,
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> VGG:
    """Build the VGG-8 used throughout the paper's evaluation."""
    return VGG(
        VGG8_CHANNELS,
        VGG8_HIDDEN,
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        rng=rng,
    )
