"""ResNet-18 (and the small ResNet-8) classifiers.

The residual block here is also the *motivation* for the paper's
ReBranch structure (Fig. 3): a fixed trunk plus a parallel learnable
correction path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import nn
from repro.models.common import ConvBNAct, scaled


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with an identity (or 1x1-projected) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.conv1 = ConvBNAct(in_channels, out_channels, 3, stride=stride, rng=rng)
        self.conv2 = ConvBNAct(out_channels, out_channels, 3, act="none", rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: nn.Module = ConvBNAct(
                in_channels, out_channels, 1, stride=stride, padding=0, act="none", rng=rng
            )
        else:
            self.shortcut = nn.Identity()
        self.act = nn.ReLU()

    def forward(self, x):
        out = self.conv2(self.conv1(x))
        return self.act(out + self.shortcut(x))

    def plan_forward(self, builder, x):
        """Declare the residual dataflow for the deployment runtime.

        The input fans out to the main path and the shortcut; the two
        rejoin at an explicit add before the activation.  Declaration
        order (conv1, conv2, shortcut, add, act) fixes the execution
        and RNG-draw order on both the compiled and reference paths.
        """
        out = builder.child(self.conv1, "conv1", x)
        out = builder.child(self.conv2, "conv2", out)
        shortcut = builder.child(self.shortcut, "shortcut", x)
        out = builder.add(out, shortcut, name="add")
        return builder.child(self.act, "act", out)

    def profile_forward(self, shape, profiler, prefix):
        """Profile the two parallel paths (main + shortcut) explicitly."""
        from repro.models.profile import _profile_module

        main = _profile_module(self.conv1, shape, profiler, f"{prefix}conv1.")
        main = _profile_module(self.conv2, main, profiler, f"{prefix}conv2.")
        _profile_module(self.shortcut, shape, profiler, f"{prefix}shortcut.")
        return main


class ResNet(nn.Module):
    """CIFAR-style ResNet: 3x3 stem, four stages of BasicBlocks, linear head."""

    STAGE_CHANNELS = (64, 128, 256, 512)

    def __init__(
        self,
        blocks_per_stage: Sequence[int],
        num_classes: int = 100,
        in_channels: int = 3,
        width_mult: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        widths = [scaled(c, width_mult) for c in self.STAGE_CHANNELS]
        self.stem = ConvBNAct(in_channels, widths[0], 3, rng=rng)

        stages: List[nn.Module] = []
        previous = widths[0]
        for stage_index, (width, depth) in enumerate(zip(widths, blocks_per_stage)):
            for block_index in range(depth):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(BasicBlock(previous, width, stride=stride, rng=rng))
                previous = width
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(previous, num_classes, rng=rng)
        self.num_classes = num_classes
        self.stage_widths = widths

    def forward(self, x):
        x = self.stages(self.stem(x))
        return self.fc(self.flatten(self.pool(x)))

    #: forward applies the children in registration order.
    plan_forward = nn.plan_serial

    def feature_extractor(self) -> nn.Module:
        return nn.Sequential(self.stem, self.stages)


def resnet18(
    num_classes: int = 100,
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> ResNet:
    """ResNet-18: 2 blocks per stage (8 blocks, 17 convs + fc)."""
    return ResNet(
        (2, 2, 2, 2),
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        rng=rng,
    )


def resnet8(
    num_classes: int = 100,
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> ResNet:
    """ResNet-8: 1 block in the first three stages (the paper's Fig. 10 text)."""
    return ResNet(
        (1, 1, 1, 0),
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        rng=rng,
    )
