"""MobileNet-style depthwise-separable classifier.

Section 2.3 argues that "ultra-scaled networks below 8-bit quantization
... are still difficult to implement on modern networks like ResNet and
MobileNet" [16].  This model supplies the MobileNet side of that claim:
depthwise 3x3 + point-wise 1x1 separable blocks, whose thin per-filter
weight distributions are exactly what makes ternary/binary quantization
collapse (see ``repro.quant.extreme`` and the related-work bench).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.models.common import ConvBNAct, scaled


class DepthwiseSeparable(nn.Module):
    """One MobileNet block: depthwise 3x3 then point-wise 1x1."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.depthwise = ConvBNAct(
            in_channels,
            in_channels,
            kernel_size=3,
            stride=stride,
            groups=in_channels,
            rng=rng,
        )
        self.pointwise = ConvBNAct(
            in_channels, out_channels, kernel_size=1, padding=0, rng=rng
        )

    def forward(self, x):
        return self.pointwise(self.depthwise(x))

    def plan_forward(self, builder, x):
        """Depthwise then pointwise — declared explicitly so the runtime
        lowers the depthwise conv through its per-group engines."""
        x = builder.child(self.depthwise, "depthwise", x)
        return builder.child(self.pointwise, "pointwise", x)


#: (out_channels, stride) of the standard MobileNet-v1 body, shortened
#: to CIFAR scale (three downsampling stages instead of five).
MOBILENET_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
)


class MobileNet(nn.Module):
    """Depthwise-separable classifier in the MobileNet-v1 style."""

    def __init__(
        self,
        blocks: Sequence[Tuple[int, int]] = MOBILENET_BLOCKS,
        num_classes: int = 100,
        in_channels: int = 3,
        width_mult: float = 1.0,
        stem_channels: int = 32,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        stem_w = scaled(stem_channels, width_mult)
        layers: List[nn.Module] = [ConvBNAct(in_channels, stem_w, 3, rng=rng)]
        previous = stem_w
        for out_channels, stride in blocks:
            out_w = scaled(out_channels, width_mult)
            layers.append(DepthwiseSeparable(previous, out_w, stride, rng=rng))
            previous = out_w
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(previous, num_classes, rng=rng)
        self.num_classes = num_classes
        self.out_channels = previous

    def forward(self, x):
        x = self.features(x)
        return self.fc(self.flatten(self.pool(x)))

    #: forward applies the children in registration order.
    plan_forward = nn.plan_serial

    def feature_extractor(self) -> nn.Module:
        return self.features


def mobilenet(
    num_classes: int = 100,
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> MobileNet:
    """CIFAR-scale MobileNet-v1 (the [16] of the related-work claim)."""
    return MobileNet(
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        rng=rng,
    )
