"""Analytic model profiling: per-layer parameters, MACs and activations.

The system-level simulator (``repro.arch``) never runs the full-size
networks numerically — a 46M-weight YOLO forward pass in numpy would be
prohibitively slow.  Instead :func:`profile_model` walks the module tree
propagating shapes symbolically, producing a :class:`ModelProfile` whose
per-layer MAC/parameter/activation counts feed the area, latency, and
energy models.

Custom composite modules participate by implementing
``profile_forward(shape, profiler, prefix) -> shape``; everything built
from the standard layers works out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import nn
from repro.models.common import conv_out_hw

Shape = Tuple[int, ...]  # (N, C, H, W) or (N, F)


@dataclass
class LayerProfile:
    """Static cost profile of one layer."""

    name: str
    kind: str  # "conv" | "linear" | "bn" | "pool" | "act" | "other"
    params: int
    macs: int
    in_shape: Shape
    out_shape: Shape
    trainable: bool = True
    #: Weight shape for CiM mapping, (rows, cols) of the unrolled matrix:
    #: conv -> (Cin*kh*kw, Cout); linear -> (in, out); else None.
    matrix_shape: Optional[Tuple[int, int]] = None

    @property
    def output_activations(self) -> int:
        count = 1
        for dim in self.out_shape[1:]:
            count *= dim
        return count

    @property
    def input_activations(self) -> int:
        count = 1
        for dim in self.in_shape[1:]:
            count *= dim
        return count


@dataclass
class ModelProfile:
    """Aggregated profile of a network."""

    layers: List[LayerProfile] = field(default_factory=list)
    input_shape: Shape = ()
    output_shape: Shape = ()

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def trainable_params(self) -> int:
        return sum(layer.params for layer in self.layers if layer.trainable)

    @property
    def frozen_params(self) -> int:
        return self.total_params - self.trainable_params

    def weight_layers(self) -> List[LayerProfile]:
        """Layers holding CiM-mappable weight matrices (conv + linear)."""
        return [l for l in self.layers if l.kind in ("conv", "linear")]

    def max_activation_footprint(self) -> int:
        """Largest single-layer output activation count (buffer sizing)."""
        if not self.layers:
            return 0
        return max(layer.output_activations for layer in self.layers)

    def summary(self) -> str:
        lines = [
            f"{'layer':<40}{'kind':<8}{'params':>12}{'MACs':>14}  out_shape",
            "-" * 90,
        ]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<40}{layer.kind:<8}{layer.params:>12,}"
                f"{layer.macs:>14,}  {layer.out_shape}"
            )
        lines.append("-" * 90)
        lines.append(
            f"{'total':<40}{'':<8}{self.total_params:>12,}{self.total_macs:>14,}"
        )
        return "\n".join(lines)


class Profiler:
    """Collects :class:`LayerProfile` entries during the symbolic walk."""

    def __init__(self):
        self.layers: List[LayerProfile] = []

    def add(self, layer: LayerProfile) -> None:
        self.layers.append(layer)


def _is_trainable(module: nn.Module) -> bool:
    params = list(module.parameters())
    return any(p.requires_grad for p in params) if params else True


def _profile_module(
    module: nn.Module, shape: Shape, profiler: Profiler, prefix: str
) -> Shape:
    """Dispatch on module type, returning the output shape."""
    custom = getattr(module, "profile_forward", None)
    if custom is not None:
        return custom(shape, profiler, prefix)

    if isinstance(module, nn.Sequential):
        for name, child in module._modules.items():
            shape = _profile_module(child, shape, profiler, f"{prefix}{name}.")
        return shape

    if isinstance(module, nn.Conv2d):
        n, c, h, w = shape
        if c != module.in_channels:
            raise ValueError(
                f"{prefix.rstrip('.')!r} expects {module.in_channels} input "
                f"channels but the dataflow provides {c}"
            )
        oc = module.out_channels
        kh, kw = module.kernel_size
        groups = getattr(module, "groups", 1)
        c_per_group = c // groups
        out_h, out_w = conv_out_hw((h, w), module.kernel_size, module.stride, module.padding)
        params = oc * c_per_group * kh * kw + (oc if module.bias is not None else 0)
        macs = oc * out_h * out_w * c_per_group * kh * kw
        out_shape = (n, oc, out_h, out_w)
        profiler.add(
            LayerProfile(
                name=prefix.rstrip("."),
                kind="conv",
                params=params,
                macs=macs * n,
                in_shape=shape,
                out_shape=out_shape,
                trainable=_is_trainable(module),
                matrix_shape=(c_per_group * kh * kw, oc),
            )
        )
        return out_shape

    if isinstance(module, nn.Linear):
        n = shape[0]
        in_f, out_f = module.in_features, module.out_features
        params = out_f * in_f + (out_f if module.bias is not None else 0)
        out_shape = (n, out_f)
        profiler.add(
            LayerProfile(
                name=prefix.rstrip("."),
                kind="linear",
                params=params,
                macs=n * in_f * out_f,
                in_shape=shape,
                out_shape=out_shape,
                trainable=_is_trainable(module),
                matrix_shape=(in_f, out_f),
            )
        )
        return out_shape

    if isinstance(module, nn.BatchNorm2d):
        profiler.add(
            LayerProfile(
                name=prefix.rstrip("."),
                kind="bn",
                params=2 * module.num_features,
                macs=0,
                in_shape=shape,
                out_shape=shape,
                trainable=_is_trainable(module),
            )
        )
        return shape

    if isinstance(module, (nn.MaxPool2d, nn.AvgPool2d)):
        n, c, h, w = shape
        kernel = module.kernel_size
        stride = module.stride if module.stride is not None else kernel
        pair = lambda v: (v, v) if isinstance(v, int) else v  # noqa: E731
        out_h, out_w = conv_out_hw((h, w), pair(kernel), pair(stride), (0, 0))
        out_shape = (n, c, out_h, out_w)
        profiler.add(
            LayerProfile(prefix.rstrip("."), "pool", 0, 0, shape, out_shape)
        )
        return out_shape

    if isinstance(module, nn.GlobalAvgPool2d):
        n, c = shape[0], shape[1]
        out_shape = (n, c, 1, 1)
        profiler.add(
            LayerProfile(prefix.rstrip("."), "pool", 0, 0, shape, out_shape)
        )
        return out_shape

    if isinstance(module, nn.Flatten):
        n = shape[0]
        flat = 1
        for dim in shape[1:]:
            flat *= dim
        return (n, flat)

    if isinstance(
        module,
        (nn.ReLU, nn.LeakyReLU, nn.Sigmoid, nn.Tanh, nn.Dropout, nn.Identity),
    ):
        return shape

    if isinstance(module, nn.ModuleList):
        raise TypeError(
            "ModuleList has no defined dataflow; wrap it in a module with "
            "a profile_forward method"
        )

    # Generic composite module: assume children execute in registration
    # order as a chain (true for all zoo models' custom blocks that do
    # not define profile_forward themselves).
    if module._modules:
        for name, child in module._modules.items():
            shape = _profile_module(child, shape, profiler, f"{prefix}{name}.")
        return shape

    raise TypeError(f"cannot profile module of type {type(module).__name__}")


def profile_model(model, input_shape: Shape) -> ModelProfile:
    """Profile ``model`` for an input of shape ``(N, C, H, W)`` or ``(N, F)``.

    Accepts either an :class:`~repro.nn.Module` or a compiled runtime
    model (:class:`~repro.runtime.CompiledModel`), which is profiled
    through its underlying (folded) module tree.  Returns a
    :class:`ModelProfile` with one entry per parameterized or
    shape-changing layer, in execution order.
    """
    if not isinstance(model, nn.Module):
        source = getattr(model, "model", None)
        if isinstance(source, nn.Module):
            model = source
        else:
            raise TypeError(
                f"cannot profile {type(model).__name__}: expected an "
                "nn.Module or a CompiledModel"
            )
    if len(input_shape) not in (2, 4):
        raise ValueError(f"expected (N, F) or (N, C, H, W), got {input_shape}")
    profiler = Profiler()
    out_shape = _profile_module(model, tuple(input_shape), profiler, "")
    return ModelProfile(
        layers=profiler.layers, input_shape=tuple(input_shape), output_shape=out_shape
    )
