"""Model zoo for the YOLoC benchmarks.

The four networks the paper evaluates (section 4.1):

* **VGG-8** — image classifier (Figs. 10, 11, 14).
* **ResNet-18** — image classifier (Figs. 10, 11, 14).
* **Tiny-YOLO** — object detector with a reduced backbone (Figs. 12, 14).
* **YOLO (DarkNet-19 backbone)** — the headline large model (Figs. 12, 14).

Every builder accepts ``width_mult`` so the same topology can be scaled
down for numpy training while the full-size topology feeds the analytic
area/energy models (see docs/architecture.md).
"""

from repro.models.common import ConvBNAct, conv_out_hw
from repro.models.vgg import VGG, vgg8
from repro.models.mobilenet import MobileNet, DepthwiseSeparable, mobilenet
from repro.models.resnet import BasicBlock, ResNet, resnet18, resnet8
from repro.models.darknet import darknet19, darknet_tiny, DarknetBackbone
from repro.models.yolo import YoloDetector, yolo_v2, tiny_yolo, decode_predictions
from repro.models.profile import LayerProfile, ModelProfile, profile_model
from repro.models.registry import build_model, available_models

__all__ = [
    "ConvBNAct",
    "conv_out_hw",
    "VGG",
    "vgg8",
    "MobileNet",
    "DepthwiseSeparable",
    "mobilenet",
    "BasicBlock",
    "ResNet",
    "resnet18",
    "resnet8",
    "darknet19",
    "darknet_tiny",
    "DarknetBackbone",
    "YoloDetector",
    "yolo_v2",
    "tiny_yolo",
    "decode_predictions",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "build_model",
    "available_models",
]
