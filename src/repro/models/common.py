"""Shared building blocks for the model zoo."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import nn


def conv_out_hw(
    hw: Tuple[int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Output spatial size of a convolution/pooling window."""
    h, w = hw
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    return ((h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)


def scaled(channels: int, width_mult: float) -> int:
    """Scale a channel count, keeping at least 4 channels."""
    return max(4, int(round(channels * width_mult)))


class ConvBNAct(nn.Module):
    """Conv2d + BatchNorm2d + activation, the standard CNN unit.

    ``act`` selects the nonlinearity: ``"relu"`` (VGG/ResNet) or
    ``"leaky"`` (DarkNet convention, slope 0.1), or ``"none"``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: Optional[int] = None,
        act: str = "relu",
        groups: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if padding is None:
            padding = kernel_size // 2
        self.conv = nn.Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=False,
            groups=groups,
            rng=rng,
        )
        self.bn = nn.BatchNorm2d(out_channels)
        if act == "relu":
            self.act: nn.Module = nn.ReLU()
        elif act == "leaky":
            self.act = nn.LeakyReLU(0.1)
        elif act == "none":
            self.act = nn.Identity()
        else:
            raise ValueError(f"unknown activation {act!r}")

    def forward(self, x):
        return self.act(self.bn(self.conv(x)))

    #: conv -> bn -> act is the registration-order chain.
    plan_forward = nn.plan_serial
