"""DarkNet backbones: DarkNet-19 (YOLO) and the Tiny-YOLO backbone.

DarkNet-19 is the 46M-weight backbone the paper headlines: a single
28nm ROM-CiM chip can hold all of it, while SRAM-CiM must stream weights
from DRAM (Fig. 14's 14.8x energy-efficiency gap).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import nn
from repro.models.common import ConvBNAct, scaled

# Layer description: int -> 3x3 conv to that many channels,
# ("pw", n) -> 1x1 (point-wise) conv, "M" -> 2x2 max-pool.
LayerCfg = Union[int, Tuple[str, int], str]

DARKNET19_CFG: Sequence[LayerCfg] = (
    32, "M",
    64, "M",
    128, ("pw", 64), 128, "M",
    256, ("pw", 128), 256, "M",
    512, ("pw", 256), 512, ("pw", 256), 512, "M",
    1024, ("pw", 512), 1024, ("pw", 512), 1024,
)

DARKNET_TINY_CFG: Sequence[LayerCfg] = (
    16, "M",
    32, "M",
    64, "M",
    128, "M",
    256, "M",
    512, "M",
    1024,
)


class DarknetBackbone(nn.Module):
    """Fully-convolutional DarkNet feature extractor."""

    def __init__(
        self,
        cfg: Sequence[LayerCfg] = DARKNET19_CFG,
        in_channels: int = 3,
        width_mult: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        layers: List[nn.Module] = []
        previous = in_channels
        out_channels = previous
        downsample = 1
        for item in cfg:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
                downsample *= 2
            elif isinstance(item, tuple):
                kind, channels = item
                if kind != "pw":
                    raise ValueError(f"unknown layer kind {kind!r}")
                width = scaled(channels, width_mult)
                layers.append(ConvBNAct(previous, width, 1, padding=0, act="leaky", rng=rng))
                previous = width
            else:
                width = scaled(int(item), width_mult)
                layers.append(ConvBNAct(previous, width, 3, act="leaky", rng=rng))
                previous = width
            out_channels = previous
        self.layers = nn.Sequential(*layers)
        self.out_channels = out_channels
        self.downsample = downsample
        self.cfg = tuple(cfg)

    def forward(self, x):
        return self.layers(x)

    #: a single Sequential child: the registration-order chain.
    plan_forward = nn.plan_serial


def darknet19(
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> DarknetBackbone:
    """The 19-conv DarkNet backbone of YOLO(v2)."""
    return DarknetBackbone(DARKNET19_CFG, in_channels, width_mult, rng)


def darknet_tiny(
    in_channels: int = 3,
    width_mult: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> DarknetBackbone:
    """The reduced backbone of Tiny-YOLO."""
    return DarknetBackbone(DARKNET_TINY_CFG, in_channels, width_mult, rng)
