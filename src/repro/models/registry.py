"""Name-based model construction for experiment configs and CLIs."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro import nn
from repro.models.mobilenet import mobilenet
from repro.models.resnet import resnet18, resnet8
from repro.models.vgg import vgg8
from repro.models.yolo import tiny_yolo, yolo_v2

_BUILDERS: Dict[str, Callable[..., nn.Module]] = {
    "vgg8": vgg8,
    "resnet18": resnet18,
    "resnet8": resnet8,
    "mobilenet": mobilenet,
    "yolo": yolo_v2,
    "tiny_yolo": tiny_yolo,
}


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str, **kwargs) -> nn.Module:
    """Instantiate a zoo model by name.

    Classification builders take ``num_classes``, ``in_channels``,
    ``width_mult`` and ``rng``; detectors take the same arguments with
    ``num_classes`` meaning object categories.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    return builder(**kwargs)
