"""ReBranch: residual-branch weight fine-tuning for ROM-CiM (section 3.2).

The core contribution of the paper.  A pretrained convolution becomes a
**trunk** whose weights are frozen (mask-programmed into ROM-CiM) plus a
parallel **branch**: a frozen point-wise channel *compression* (ratio D),
a trainable *res-conv*, and a frozen point-wise *decompression*
(ratio U).  Only 1/(D*U) of the trunk's parameter count stays trainable
and SRAM-resident, yet the branch can learn the residual needed to
transfer the frozen model to new tasks.

Also implements the three alternative flexibility options the paper
compares against (Fig. 6):

* Option I — :mod:`~repro.rebranch.rosl`: one-shot learning with a
  TCAM distance classifier over frozen ROM features.
* Option II — ATL: freeze a prefix of layers, retrain the rest
  (:func:`~repro.rebranch.options.apply_atl`).
* Option III — SPWD: a trainable low-bit SRAM conv in parallel with the
  frozen 8-bit ROM conv (:class:`~repro.rebranch.options.SpwdConv2d`).
"""

from repro.rebranch.branch import ReBranchConv2d
from repro.rebranch.convert import convert_to_rebranch, rebranch_modules
from repro.rebranch.options import (
    apply_all_sram,
    apply_all_rom,
    apply_deep_conv,
    apply_atl,
    apply_rebranch,
    SpwdConv2d,
    convert_to_spwd,
    METHOD_APPLIERS,
)
from repro.rebranch.rosl import TcamDistanceClassifier, RoslClassifier
from repro.rebranch.transfer import TransferTrainer, TrainConfig, evaluate_accuracy
from repro.rebranch.accounting import MemoryFootprint, method_footprint
from repro.rebranch.search import (
    DuCandidate,
    DuEvaluation,
    DuSearchResult,
    default_candidates,
    select_minimum_area,
    search,
)

__all__ = [
    "ReBranchConv2d",
    "convert_to_rebranch",
    "rebranch_modules",
    "apply_all_sram",
    "apply_all_rom",
    "apply_deep_conv",
    "apply_atl",
    "apply_rebranch",
    "SpwdConv2d",
    "convert_to_spwd",
    "METHOD_APPLIERS",
    "TcamDistanceClassifier",
    "RoslClassifier",
    "TransferTrainer",
    "TrainConfig",
    "evaluate_accuracy",
    "MemoryFootprint",
    "method_footprint",
    "DuCandidate",
    "DuEvaluation",
    "DuSearchResult",
    "default_candidates",
    "select_minimum_area",
    "search",
]
