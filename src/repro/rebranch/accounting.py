"""Memory-area accounting for the flexibility options (Figs. 10b, 11a, 12).

For a prepared model (after one of the ``apply_*`` policies), every
parameter with ``requires_grad=True`` must live in writable SRAM-CiM;
frozen parameters can be mask-programmed into dense ROM-CiM.  The
footprint converts those bit counts into silicon area through the macro
densities of ``repro.cim.spec``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.cim.spec import MacroSpec, rom_macro_spec, sram_macro_spec
from repro.rebranch.options import SpwdConv2d


@dataclass
class MemoryFootprint:
    """Weight storage of one deployment option."""

    rom_bits: int
    sram_bits: int
    rom_spec: MacroSpec
    sram_spec: MacroSpec

    @property
    def total_bits(self) -> int:
        return self.rom_bits + self.sram_bits

    @property
    def rom_area_mm2(self) -> float:
        return self.rom_bits / 1e6 / self.rom_spec.density_mb_mm2

    @property
    def sram_area_mm2(self) -> float:
        return self.sram_bits / 1e6 / self.sram_spec.density_mb_mm2

    @property
    def total_area_mm2(self) -> float:
        return self.rom_area_mm2 + self.sram_area_mm2

    def normalized_to(self, baseline: "MemoryFootprint") -> float:
        """Area relative to a baseline (Fig. 10b's 'All SRAM' = 1.0)."""
        return self.total_area_mm2 / baseline.total_area_mm2


def method_footprint(
    model: nn.Module,
    weight_bits: int = 8,
    rom_spec: MacroSpec = None,
    sram_spec: MacroSpec = None,
) -> MemoryFootprint:
    """Footprint of a prepared model: trainable -> SRAM, frozen -> ROM.

    SPWD decorations store ``SpwdConv2d.bits`` per weight instead of the
    full ``weight_bits`` (the 2-bit decoration of Fig. 6c).
    """
    rom_spec = rom_spec if rom_spec is not None else rom_macro_spec()
    sram_spec = sram_spec if sram_spec is not None else sram_macro_spec()

    low_bit_params = set()
    low_bits = weight_bits
    for module in model.modules():
        if isinstance(module, SpwdConv2d):
            low_bit_params.add(id(module.decoration.weight))
            low_bits = module.bits

    rom_bits = 0
    sram_bits = 0
    for param in model.parameters():
        bits = low_bits if id(param) in low_bit_params else weight_bits
        if param.requires_grad:
            sram_bits += param.size * bits
        else:
            rom_bits += param.size * bits
    return MemoryFootprint(rom_bits, sram_bits, rom_spec, sram_spec)
