"""Model conversion: wrap pretrained convolutions with residual branches."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro import nn
from repro.rebranch.branch import ReBranchConv2d


def _default_predicate(name: str, conv: nn.Conv2d) -> bool:
    """Branch every spatial (k > 1) convolution.

    Point-wise convolutions are already small; the paper applies ReBranch
    to the deep convolution layer groups.
    """
    return conv.kernel_size != (1, 1)


def convert_to_rebranch(
    model: nn.Module,
    d: int = 4,
    u: int = 4,
    predicate: Optional[Callable[[str, nn.Conv2d], bool]] = None,
    skip_last: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Replace Conv2d layers of a *pretrained* model with ReBranchConv2d.

    The trunk keeps the pretrained weights (frozen); each branch starts
    at zero so the converted model is functionally identical until
    fine-tuning.  ``skip_last`` leaves the final weight layer (the
    prediction head / classifier input conv) untouched — it stays fully
    trainable in SRAM-CiM per the YOLoC architecture.

    Returns the number of layers converted.  Modifies ``model`` in place.
    """
    predicate = predicate if predicate is not None else _default_predicate
    rng = rng if rng is not None else np.random.default_rng()

    candidates = []
    for parent_name, parent in model.named_modules():
        for child_name, child in list(parent._modules.items()):
            if isinstance(child, nn.Conv2d):
                full = f"{parent_name}.{child_name}" if parent_name else child_name
                candidates.append((parent, child_name, full, child))

    if skip_last and candidates:
        candidates = candidates[:-1]

    converted = 0
    for parent, child_name, full, conv in candidates:
        if not predicate(full, conv):
            continue
        setattr(parent, child_name, ReBranchConv2d(conv, d=d, u=u, rng=rng))
        converted += 1
    return converted


def rebranch_modules(model: nn.Module) -> List[ReBranchConv2d]:
    """All ReBranch layers of a converted model, in execution order."""
    return [m for m in model.modules() if isinstance(m, ReBranchConv2d)]
