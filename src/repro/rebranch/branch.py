"""The ReBranch convolution (Fig. 7).

``out = trunk(x) + decompress(res_conv(compress(x)))``

* ``trunk`` — the pretrained convolution, frozen (ROM-CiM).
* ``compress`` — frozen point-wise conv N -> N/D (ROM-CiM).  Its weights
  are fixed at mask time, *before* any target task is known, so they are
  a task-agnostic random projection (scaled for variance preservation).
* ``res_conv`` — trainable conv N/D -> M/U with the trunk's kernel,
  stride and padding (SRAM-CiM).  Initialized to zero so the wrapped
  layer starts exactly equal to the pretrained trunk.
* ``decompress`` — frozen point-wise conv M/U -> M (ROM-CiM).

As Fig. 8 shows, the branch is algebraically a full-size convolution of
rank limited by the compression, so it can adjust the trunk "to a
certain extent" with only 1/(D*U) of the parameters trainable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn


def _fixed_projection(
    out_channels: int, in_channels: int, rng: np.random.Generator
) -> np.ndarray:
    """Variance-preserving random point-wise projection (frozen in ROM)."""
    weight = rng.normal(0.0, 1.0 / np.sqrt(in_channels), size=(out_channels, in_channels))
    return weight.reshape(out_channels, in_channels, 1, 1)


class ReBranchConv2d(nn.Module):
    """Drop-in replacement for a pretrained Conv2d with a residual branch."""

    def __init__(
        self,
        trunk: nn.Conv2d,
        d: int = 4,
        u: int = 4,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if d < 1 or u < 1:
            raise ValueError(f"compression ratios must be >= 1, got D={d}, U={u}")
        rng = rng if rng is not None else np.random.default_rng()

        in_channels = trunk.in_channels
        out_channels = trunk.out_channels
        compressed = max(1, in_channels // d)
        decompressed = max(1, out_channels // u)

        self.d = d
        self.u = u
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = trunk.kernel_size
        self.stride = trunk.stride
        self.padding = trunk.padding

        # Trunk: the pretrained weights, frozen (ROM).
        self.trunk = trunk
        self.trunk.freeze()

        # Branch: compress (frozen) -> res-conv (trainable) -> decompress
        # (frozen).
        self.compress = nn.Conv2d(in_channels, compressed, 1, bias=False, rng=rng)
        self.compress.weight.data = _fixed_projection(compressed, in_channels, rng)
        self.compress.freeze()

        self.res_conv = nn.Conv2d(
            compressed,
            decompressed,
            trunk.kernel_size,
            stride=trunk.stride,
            padding=trunk.padding,
            bias=False,
            rng=rng,
        )
        self.res_conv.weight.data = np.zeros_like(self.res_conv.weight.data)

        self.decompress = nn.Conv2d(decompressed, out_channels, 1, bias=False, rng=rng)
        self.decompress.weight.data = _fixed_projection(
            out_channels, decompressed, rng
        )
        self.decompress.freeze()

    def forward(self, x):
        return self.trunk(x) + self.decompress(self.res_conv(self.compress(x)))

    def branch_parameters(self):
        """The SRAM-resident trainable parameters (the res-conv)."""
        return list(self.res_conv.parameters())

    @property
    def trunk_param_count(self) -> int:
        return self.trunk.weight.size + (
            self.trunk.bias.size if self.trunk.bias is not None else 0
        )

    @property
    def branch_trainable_param_count(self) -> int:
        return self.res_conv.weight.size

    @property
    def compression_ratio(self) -> float:
        """Trunk weights per trainable branch weight (~D*U, Fig. 11a)."""
        return self.trunk.weight.size / self.res_conv.weight.size

    def profile_forward(self, shape, profiler, prefix):
        """Profile the parallel trunk/branch dataflow."""
        from repro.models.profile import _profile_module

        out = _profile_module(self.trunk, shape, profiler, f"{prefix}trunk.")
        branch = _profile_module(self.compress, shape, profiler, f"{prefix}compress.")
        branch = _profile_module(self.res_conv, branch, profiler, f"{prefix}res_conv.")
        _profile_module(self.decompress, branch, profiler, f"{prefix}decompress.")
        return out

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, D={self.d}, U={self.u}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}"
        )
