"""Area-constrained selection of the ReBranch ratios D and U.

Section 3.2 states the design problem: "the optimization goal is to
achieve minimum area occupation by designing proper Res-(De)Compression
layers, which leads to the reduction of the number of channels used in
Res-Conv".  Fig. 11 explores the grid by hand; this module automates
the choice:

1. :func:`default_candidates` enumerates power-of-two (D, U) splits up
   to a maximum compression D*U.
2. The caller evaluates each candidate (trained accuracy + memory
   footprint) — see ``repro.experiments.du_search`` for the standard
   training-based evaluator.
3. :func:`select_minimum_area` picks the smallest-SRAM candidate whose
   accuracy clears a floor (absolute, or relative to the best
   candidate — the paper's "almost no accuracy loss" criterion).

The paper's D=U=4 answer falls out of the same procedure: symmetric
splits dominate asymmetric ones at equal D*U (Fig. 11b), and 16x is
the largest compression that stays within tolerance of the all-SRAM
accuracy (Fig. 11a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class DuCandidate:
    """One (compression, decompression) ratio pair."""

    d: int
    u: int

    def __post_init__(self):
        if self.d < 1 or self.u < 1:
            raise ValueError(f"ratios must be >= 1, got D={self.d}, U={self.u}")

    @property
    def du(self) -> int:
        """Overall trainable-parameter compression ratio."""
        return self.d * self.u

    @property
    def asymmetry(self) -> float:
        """max(D,U)/min(D,U); 1.0 for the symmetric splits of Fig. 11b."""
        return max(self.d, self.u) / min(self.d, self.u)


@dataclass
class DuEvaluation:
    """Measured cost/quality of one candidate."""

    candidate: DuCandidate
    accuracy: float
    sram_area_mm2: float
    total_area_mm2: float
    trainable_params: int


@dataclass
class DuSearchResult:
    evaluations: List[DuEvaluation] = field(default_factory=list)
    selected: Optional[DuEvaluation] = None
    accuracy_floor: float = 0.0

    def best_accuracy(self) -> float:
        if not self.evaluations:
            raise ValueError("no candidates evaluated")
        return max(e.accuracy for e in self.evaluations)

    def frontier(self) -> List[DuEvaluation]:
        """Accuracy/area Pareto frontier of the evaluated grid."""
        return [
            e
            for e in self.evaluations
            if not any(
                o.accuracy >= e.accuracy
                and o.sram_area_mm2 < e.sram_area_mm2
                for o in self.evaluations
            )
        ]


def default_candidates(
    max_du: int = 64, symmetric_only: bool = False
) -> List[DuCandidate]:
    """Power-of-two (D, U) pairs with ``4 <= D*U <= max_du``.

    Covers both Fig. 11 sweeps: the symmetric diagonal (D=U) and, when
    ``symmetric_only`` is false, the asymmetric splits of Fig. 11(b).
    """
    if max_du < 4:
        raise ValueError(f"max_du must be >= 4, got {max_du}")
    candidates = []
    d = 1
    while d <= max_du:
        u = 1
        while d * u <= max_du:
            pair = DuCandidate(d, u)
            if pair.du >= 4 and (not symmetric_only or d == u):
                candidates.append(pair)
            u *= 2
        d *= 2
    return candidates


def select_minimum_area(
    evaluations: Sequence[DuEvaluation],
    accuracy_floor: Optional[float] = None,
    tolerance: Optional[float] = None,
) -> DuEvaluation:
    """Smallest-SRAM candidate whose accuracy clears the floor.

    Exactly one of ``accuracy_floor`` (absolute) or ``tolerance``
    (allowed drop below the best evaluated accuracy) must be given.
    Ties on area break toward higher accuracy.
    """
    if not evaluations:
        raise ValueError("no candidates to select from")
    if (accuracy_floor is None) == (tolerance is None):
        raise ValueError("give exactly one of accuracy_floor or tolerance")
    if tolerance is not None:
        if tolerance < 0:
            raise ValueError("tolerance cannot be negative")
        accuracy_floor = max(e.accuracy for e in evaluations) - tolerance
    feasible = [e for e in evaluations if e.accuracy >= accuracy_floor]
    if not feasible:
        raise ValueError(
            f"no candidate reaches accuracy {accuracy_floor:.3f}; "
            f"best is {max(e.accuracy for e in evaluations):.3f}"
        )
    return min(feasible, key=lambda e: (e.sram_area_mm2, -e.accuracy))


def search(
    evaluate: Callable[[DuCandidate], DuEvaluation],
    candidates: Optional[Sequence[DuCandidate]] = None,
    accuracy_floor: Optional[float] = None,
    tolerance: Optional[float] = 0.01,
) -> DuSearchResult:
    """Evaluate every candidate and select the minimum-area one.

    ``evaluate`` maps a candidate to its measured :class:`DuEvaluation`
    (typically: apply ReBranch at (D, U), fine-tune, measure accuracy
    and footprint).  The default tolerance of one accuracy point mirrors
    the paper's "<0.4% accuracy loss" working point.
    """
    candidates = (
        list(candidates) if candidates is not None else default_candidates()
    )
    result = DuSearchResult()
    for candidate in candidates:
        result.evaluations.append(evaluate(candidate))
    result.selected = select_minimum_area(
        result.evaluations, accuracy_floor=accuracy_floor, tolerance=tolerance
    )
    result.accuracy_floor = (
        accuracy_floor
        if accuracy_floor is not None
        else result.best_accuracy() - (tolerance or 0.0)
    )
    return result
