"""The four flexibility options of section 3.2 as freezing/conversion policies.

Each ``apply_*`` function takes a *pretrained* model and mutates it into
the corresponding deployment: parameters that would live in ROM-CiM are
frozen, parameters that stay in SRAM-CiM remain trainable.  All return
the model for chaining.

The experiment runners (Figs. 6b, 10, 12) train only the parameters
with ``requires_grad=True`` afterwards, exactly like the paper's
transfer-learning protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro import nn
from repro.quant.fake_quant import fake_quant
from repro.rebranch.convert import convert_to_rebranch


def _weight_modules(model: nn.Module):
    return [
        (name, m)
        for name, m in model.named_modules()
        if isinstance(m, (nn.Conv2d, nn.Linear))
    ]


def _classifier_modules(model: nn.Module):
    """Heuristic: the trailing Linear layers (or final conv for FCNs)."""
    weights = _weight_modules(model)
    linears = [(n, m) for n, m in weights if isinstance(m, nn.Linear)]
    if linears:
        return linears
    return weights[-1:]


def apply_all_sram(model: nn.Module) -> nn.Module:
    """Baseline [3]: every layer trainable, everything in SRAM-CiM."""
    return model.unfreeze()


def apply_all_rom(model: nn.Module) -> nn.Module:
    """Option II extreme: only the classifier trains (feature extractor
    fully frozen in ROM).  The paper's Fig. 10 'All ROM' bar."""
    model.freeze()
    for _, module in _classifier_modules(model):
        module.unfreeze()
    return model


def apply_deep_conv(model: nn.Module) -> nn.Module:
    """Option II practical point: last conv group + classifier trainable
    ('DeepConv' in Figs. 10 and 12)."""
    model.freeze()
    convs = [(n, m) for n, m in _weight_modules(model) if isinstance(m, nn.Conv2d)]
    spatial = [(n, m) for n, m in convs if m.kernel_size != (1, 1)]
    if spatial:
        spatial[-1][1].unfreeze()
    elif convs:
        convs[-1][1].unfreeze()
    for _, module in _classifier_modules(model):
        module.unfreeze()
    return model


def apply_atl(model: nn.Module, n_frozen_convs: int) -> nn.Module:
    """Option II general: freeze the first ``n_frozen_convs`` conv layers
    (high transferability, Fig. 6b), train the rest."""
    if n_frozen_convs < 0:
        raise ValueError("cannot freeze a negative number of layers")
    model.unfreeze()
    convs = [(n, m) for n, m in _weight_modules(model) if isinstance(m, nn.Conv2d)]
    for _, module in convs[:n_frozen_convs]:
        module.freeze()
    return model


def apply_rebranch(
    model: nn.Module,
    d: int = 4,
    u: int = 4,
    skip_last: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> nn.Module:
    """Option IV (proposed): branch every feature conv, freeze everything
    except the res-convs, BN affine parameters, and the classifier."""
    convert_to_rebranch(model, d=d, u=u, skip_last=skip_last, rng=rng)
    # Conversion freezes trunks/projections; leave the rest trainable:
    # res-convs are trainable already, classifier + BN remain trainable.
    return model


# ----------------------------------------------------------------------
# Option III: SRAM-assisted parallel weight decoration (SPWD)
# ----------------------------------------------------------------------
class SpwdConv2d(nn.Module):
    """Frozen 8-bit ROM conv + trainable low-bit SRAM conv in parallel.

    ``out = trunk(x) + decoration(x)`` where the decoration weight is
    fake-quantized to ``bits`` (typically 2) during training — Fig. 6(c).
    The decoration has the same full shape as the trunk, so the area
    saving is bounded by the bit-width ratio (8/2 = 4x), the weakness
    ReBranch overcomes.
    """

    def __init__(
        self,
        trunk: nn.Conv2d,
        bits: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if bits < 1 or bits > 8:
            raise ValueError(f"decoration bits must be in [1, 8], got {bits}")
        rng = rng if rng is not None else np.random.default_rng()
        self.bits = bits
        self.trunk = trunk
        self.trunk.freeze()
        self.decoration = nn.Conv2d(
            trunk.in_channels,
            trunk.out_channels,
            trunk.kernel_size,
            stride=trunk.stride,
            padding=trunk.padding,
            bias=False,
            rng=rng,
        )
        self.decoration.weight.data = np.zeros_like(self.decoration.weight.data)

    def forward(self, x):
        quantized = fake_quant(self.decoration.weight, bits=self.bits)
        decorated = nn.conv2d(
            x, quantized, None, self.decoration.stride, self.decoration.padding
        )
        return self.trunk(x) + decorated

    def profile_forward(self, shape, profiler, prefix):
        from repro.models.profile import _profile_module

        out = _profile_module(self.trunk, shape, profiler, f"{prefix}trunk.")
        _profile_module(self.decoration, shape, profiler, f"{prefix}decoration.")
        return out

    def extra_repr(self) -> str:
        return f"bits={self.bits}"


def convert_to_spwd(
    model: nn.Module,
    bits: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Wrap every spatial conv with a low-bit decoration branch."""
    rng = rng if rng is not None else np.random.default_rng()
    # Snapshot candidates before mutating: inserting a SpwdConv2d nests
    # the original conv as its trunk, which a live walk would revisit.
    candidates = []
    for _, parent in model.named_modules():
        for child_name, child in parent._modules.items():
            if isinstance(child, nn.Conv2d) and child.kernel_size != (1, 1):
                candidates.append((parent, child_name, child))
    for parent, child_name, child in candidates:
        setattr(parent, child_name, SpwdConv2d(child, bits=bits, rng=rng))
    return len(candidates)


#: Method name -> applier, as used by the Fig. 10/12 experiment runners.
METHOD_APPLIERS: Dict[str, Callable[..., nn.Module]] = {
    "all_sram": apply_all_sram,
    "all_rom": apply_all_rom,
    "deep_conv": apply_deep_conv,
    "rebranch": apply_rebranch,
}
