"""Option I: ROM-CiM-based one-shot learning (ROSL, Fig. 6a).

The feature extractor stays frozen in ROM-CiM; classification happens in
an SRAM TCAM that compares the binarized query feature against stored
class prototypes by Hamming distance (a matching-network [22] reduced to
its hardware-friendly nearest-prototype form).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


class TcamDistanceClassifier:
    """Ternary-CAM nearest-prototype classifier over binary codes.

    Prototypes are the sign-binarized mean feature of each class's
    support set; queries match by minimum Hamming distance — exactly the
    operation a TCAM array evaluates in one cycle per stored word.
    """

    def __init__(self, feature_dim: int, num_classes: int):
        if feature_dim <= 0 or num_classes <= 0:
            raise ValueError("feature_dim and num_classes must be positive")
        self.feature_dim = feature_dim
        self.num_classes = num_classes
        self.prototypes = np.zeros((num_classes, feature_dim), dtype=np.int8)
        self._fitted = np.zeros(num_classes, dtype=bool)

    @staticmethod
    def binarize(features: np.ndarray) -> np.ndarray:
        """Sign binarization to {0, 1} codes (TCAM storage format)."""
        return (np.asarray(features) > 0).astype(np.int8)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Store one prototype per class from support examples."""
        features = np.asarray(features)
        labels = np.asarray(labels)
        if features.shape[1] != self.feature_dim:
            raise ValueError(
                f"features have dim {features.shape[1]}, expected {self.feature_dim}"
            )
        for class_id in np.unique(labels):
            mean = features[labels == class_id].mean(axis=0)
            self.prototypes[class_id] = self.binarize(mean)
            self._fitted[class_id] = True

    def hamming_distances(self, features: np.ndarray) -> np.ndarray:
        """(N, num_classes) Hamming distances of binarized queries."""
        codes = self.binarize(features)
        return (codes[:, None, :] != self.prototypes[None, :, :]).sum(axis=2)

    def predict(self, features: np.ndarray) -> np.ndarray:
        distances = self.hamming_distances(features).astype(np.float64)
        distances[:, ~self._fitted] = np.inf
        return distances.argmin(axis=1)

    @property
    def tcam_bits(self) -> int:
        """TCAM storage: 2 bits per ternary cell word entry."""
        return 2 * self.num_classes * self.feature_dim


class RoslClassifier:
    """Frozen feature extractor (ROM-CiM) + TCAM prototype classifier."""

    def __init__(self, feature_extractor: nn.Module, feature_dim: int, num_classes: int):
        self.extractor = feature_extractor
        self.extractor.freeze()
        self.extractor.eval()
        self.tcam = TcamDistanceClassifier(feature_dim, num_classes)

    def _features(self, x: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            out = self.extractor(Tensor(x))
        features = out.data
        return features.reshape(features.shape[0], -1)

    def fit(self, x: np.ndarray, labels: np.ndarray) -> None:
        """One-/few-shot enrolment from a (small) support set."""
        self.tcam.fit(self._features(x), labels)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.tcam.predict(self._features(x))

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(labels)).mean())
