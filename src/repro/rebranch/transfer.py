"""Transfer-learning training loop shared by all experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


@dataclass
class TrainConfig:
    """Hyper-parameters for a (scaled-down) transfer run."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 1e-2
    weight_decay: float = 0.0
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class TrainResult:
    """History of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    test_accuracy: float = 0.0
    trainable_params: int = 0
    total_params: int = 0

    @property
    def trainable_fraction(self) -> float:
        return self.trainable_params / self.total_params if self.total_params else 0.0


def evaluate_accuracy(model: nn.Module, x: np.ndarray, y: np.ndarray, batch_size: int = 64) -> float:
    """Top-1 accuracy of ``model`` on arrays ``x`` (N,C,H,W), ``y`` (N,)."""
    model.eval()
    correct = 0
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            batch = Tensor(x[start : start + batch_size])
            logits = model(batch)
            preds = logits.data.argmax(axis=1)
            correct += int((preds == y[start : start + batch_size]).sum())
    model.train()
    return correct / len(x)


class TransferTrainer:
    """Trains exactly the unfrozen parameters of a prepared model.

    The preparation step (one of the ``apply_*`` policies in
    :mod:`repro.rebranch.options`) decides what is ROM (frozen) vs SRAM
    (trainable); this trainer then mirrors the paper's fine-tune runs.
    """

    def __init__(self, model: nn.Module, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config if config is not None else TrainConfig()
        trainable = [p for p in model.parameters() if p.requires_grad]
        if not trainable:
            raise ValueError(
                "model has no trainable parameters; apply a policy that "
                "leaves at least the classifier unfrozen"
            )
        if self.config.optimizer == "adam":
            self.optimizer: nn.Optimizer = nn.Adam(
                trainable, lr=self.config.lr, weight_decay=self.config.weight_decay
            )
        else:
            self.optimizer = nn.SGD(
                trainable,
                lr=self.config.lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
            )

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: Optional[np.ndarray] = None,
        y_test: Optional[np.ndarray] = None,
    ) -> TrainResult:
        config = self.config
        dataset = nn.TensorDataset(x_train, y_train)
        loader = nn.DataLoader(
            dataset, batch_size=config.batch_size, shuffle=True, seed=config.seed
        )
        result = TrainResult(
            trainable_params=sum(
                p.size for p in self.model.parameters() if p.requires_grad
            ),
            total_params=self.model.num_parameters(),
        )
        self.model.train()
        for _ in range(config.epochs):
            epoch_loss = 0.0
            batches = 0
            for batch_x, batch_y in loader:
                self.optimizer.zero_grad()
                logits = self.model(Tensor(batch_x))
                loss = nn.cross_entropy(logits, batch_y.astype(int))
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            result.losses.append(epoch_loss / max(batches, 1))

        result.train_accuracy = evaluate_accuracy(self.model, x_train, y_train)
        if x_test is not None and y_test is not None:
            result.test_accuracy = evaluate_accuracy(self.model, x_test, y_test)
        return result
