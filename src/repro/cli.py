"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``        model-zoo profiles (params/MACs per model).
``table1``      Table I macro specification report.
``fig14``       the chip-level system comparison.
``fig6b|fig10|fig11|fig12``  the training experiments (``--full`` for
                the EXPERIMENTS.md budget, default is the fast budget).
``options``     Options I-IV head-to-head study (Fig. 6).
``packing``     the subarray packing ablation (section 4.3.2).
``encoding``    activation-encoding trade-off (section 3.1).
``designspace`` ADC-count vs activated-rows grid (section 4.3.1).
``chiplets``    ROM-CiM vs SRAM-CiM chiplet assemblies (section 4.3.3).
``pingpong``    double-buffered weight-reload schedules (section 4.3.3).
``training``    on-chip training cost, full vs ReBranch (section 3.3).
``variation``   static device-variation Monte-Carlo (section 2).
``dusearch``    automated minimum-area D/U selection (section 3.2).
``subbit``      sub-8-bit quantization on VGG vs MobileNet (section 2.3).
``runtime``     compile-once runtime amortization study (serving vs
                streaming, compiled vs seed per-call path).
``serve``       dynamic-batching inference server demo: Poisson traffic
                from mixed tenants over registered models, with
                throughput / latency / batching / energy metrics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import models, viz
from repro.experiments import fig6b, fig10, fig11, fig12, fig14, table1
from repro.experiments import ablations, options_study
from repro.experiments.common import format_table


def _cmd_info(args: argparse.Namespace) -> int:
    shapes = {
        "vgg8": (1, 3, 32, 32),
        "resnet18": (1, 3, 32, 32),
        "resnet8": (1, 3, 32, 32),
        "mobilenet": (1, 3, 32, 32),
        "tiny_yolo": (1, 3, 416, 416),
        "yolo": (1, 3, 416, 416),
    }
    rows = []
    for name in models.available_models():
        model = models.build_model(name, rng=np.random.default_rng(0))
        profile = models.profile_model(model, shapes[name])
        rows.append(
            (
                name,
                f"{profile.total_params / 1e6:.2f}M",
                f"{profile.total_macs / 1e9:.2f}G",
                str(profile.output_shape),
            )
        )
    print(format_table(rows, ["model", "params", "MACs", "output"]))
    if args.verbose:
        model = models.build_model(args.model, rng=np.random.default_rng(0))
        print()
        print(models.profile_model(model, shapes[args.model]).summary())
    return 0


def _cmd_table1(_: argparse.Namespace) -> int:
    print(table1.format_report(table1.run()))
    return 0


def _cmd_fig14(_: argparse.Namespace) -> int:
    result = fig14.run(fig14.full_config())
    print(fig14.format_report(result))
    print()
    print(
        viz.bar_chart(
            sorted(result.improvements().items()),
            title="energy-efficiency improvement vs iso-capacity SRAM-CiM chip",
            unit="x",
        )
    )
    print()
    print("YOLoC (yolo) area breakdown:")
    print(viz.stacked_fraction_bar(result.yoloc_area_breakdown("yolo")))
    print("single-chip SRAM-CiM (yolo) energy breakdown:")
    print(viz.stacked_fraction_bar(result.energy_breakdown("yolo")))
    return 0


def _training_command(runner, args: argparse.Namespace):
    config = runner.full_config() if args.full else runner.fast_config()
    return runner.run(config)


def _cmd_fig10(args: argparse.Namespace) -> int:
    result = _training_command(fig10, args)
    rows = [
        (r.model, r.target, r.method, r.accuracy, r.normalized_area)
        for r in result.rows
    ]
    print(format_table(rows, ["model", "target", "method", "accuracy", "norm_area"]))
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    result = _training_command(fig11, args)
    rows = [
        ("ratio", f"D{p.d}xU{p.u}", p.accuracy, p.normalized_area)
        for p in result.ratio_points
    ] + [
        ("split", f"D{p.d}-U{p.u}", p.accuracy, p.normalized_area)
        for p in result.split_points
    ]
    print(format_table(rows, ["sweep", "point", "accuracy", "norm_area"]))
    return 0


def _cmd_fig12(args: argparse.Namespace) -> int:
    result = _training_command(fig12, args)
    rows = [(r.method, r.target, r.map50) for r in result.rows]
    print(format_table(rows, ["method", "target", "mAP@0.5"]))
    print()
    print(
        viz.bar_chart(
            [(a.method, round(a.total_cm2, 2)) for a in result.areas],
            title="chip area to hold all weights (cm^2)",
        )
    )
    return 0


def _cmd_fig6b(args: argparse.Namespace) -> int:
    result = _training_command(fig6b, args)
    print(
        viz.line_plot(
            [p.n_frozen_convs for p in result.points],
            [p.accuracy for p in result.points],
            title="ATL: accuracy vs frozen conv layers",
            y_label="accuracy",
        )
    )
    return 0


def _cmd_options(args: argparse.Namespace) -> int:
    config = options_study.full_config() if args.full else options_study.fast_config()
    result = options_study.run(config)
    rows = [
        (r.option, r.accuracy, r.normalized_area, r.sram_bits, r.rom_bits)
        for r in result.rows
    ]
    print(format_table(rows, ["option", "accuracy", "norm_area", "sram_bits", "rom_bits"]))
    return 0


def _cmd_packing(_: argparse.Namespace) -> int:
    report = ablations.packing_ablation()
    rows = [(key, value) for key, value in report.items()]
    print(format_table(rows, ["metric", "value"]))
    return 0


def _cmd_encoding(args: argparse.Namespace) -> int:
    from repro.experiments import encoding_study

    config = (
        encoding_study.full_config() if args.full else encoding_study.fast_config()
    )
    result = encoding_study.run(config)
    print(
        format_table(
            result.rows(),
            [
                "encoding",
                "bits",
                "wl_cycles",
                "conv/col",
                "rel_error",
                "fJ_per_mac",
                "ns_per_vec",
            ],
        )
    )
    return 0


def _cmd_designspace(_: argparse.Namespace) -> int:
    from repro.cim import explore

    result = explore()
    rows = [
        (p.n_adcs, p.activated_rows, p.rel_error, p.latency_ns, p.adc_area_mm2 * 1e3)
        for p in result.points
    ]
    print(
        format_table(
            rows, ["n_adcs", "act_rows", "rel_error", "ns_per_vec", "adc_mm2_x1e3"]
        )
    )
    frontier = result.frontier()
    print(f"\npareto frontier: {len(frontier)} / {len(result.points)} corners")
    return 0


def _cmd_chiplets(args: argparse.Namespace) -> int:
    from repro.arch import chiplet_scaling

    model = models.build_model(args.model, rng=np.random.default_rng(0))
    shape = (1, 3, 416, 416) if "yolo" in args.model else (1, 3, 32, 32)
    profile = models.profile_model(model, shape)
    result = chiplet_scaling(profile, model_name=args.model)
    rows = [
        (
            p.die_area_mm2,
            p.rom_chips,
            p.sram_chips,
            p.rom_area_cm2,
            p.sram_area_cm2,
            p.rom_energy_uj,
            p.sram_energy_uj,
        )
        for p in result.points
    ]
    print(
        format_table(
            rows,
            [
                "die_mm2",
                "rom_chips",
                "sram_chips",
                "rom_cm2",
                "sram_cm2",
                "rom_uJ",
                "sram_uJ",
            ],
        )
    )
    return 0


def _cmd_pingpong(args: argparse.Namespace) -> int:
    from repro.experiments import pipeline_study

    config = (
        pipeline_study.full_config() if args.full else pipeline_study.fast_config()
    )
    result = pipeline_study.run(config)
    rows = [
        (
            r["model"],
            r["resident_fraction"],
            r["serial_ns"] / 1e6,
            r["pingpong_ns"] / 1e6,
            r["latency_relief"],
        )
        for r in result.rows
    ]
    print(
        format_table(
            rows, ["model", "resident", "serial_ms", "pingpong_ms", "relief"]
        )
    )
    return 0


def _cmd_training(_: argparse.Namespace) -> int:
    from repro.arch import TrainingCostModel

    cost_model = TrainingCostModel()
    shapes = {
        "vgg8": (1, 3, 32, 32),
        "resnet18": (1, 3, 32, 32),
        "tiny_yolo": (1, 3, 416, 416),
        "yolo": (1, 3, 416, 416),
    }
    rows = []
    for name, shape in shapes.items():
        profile = models.profile_model(
            models.build_model(name, rng=np.random.default_rng(0)), shape
        )
        summary = cost_model.summary(profile)
        rows.append(
            (
                name,
                summary["full_step_uj"],
                summary["rebranch_step_uj"],
                summary["energy_saving"],
                summary["trainable_reduction"],
            )
        )
    print(
        format_table(
            rows, ["model", "full_uJ", "rebranch_uJ", "saving", "trainableX"]
        )
    )
    return 0


def _cmd_variation(_: argparse.Namespace) -> int:
    from repro.cim import tolerable_cell_sigma, variation_sweep

    results = variation_sweep()
    rows = [
        (v.cell_sigma, v.adc_offset_sigma, r.mean, r.p95) for v, r in results
    ]
    print(format_table(rows, ["cell_sigma", "adc_offset", "mean_err", "p95_err"]))
    sigma = tolerable_cell_sigma(error_budget=0.05)
    print(f"\ntolerable cell mismatch at 5% error budget: sigma = {sigma:.2f}")
    return 0


def _cmd_dusearch(args: argparse.Namespace) -> int:
    from repro.experiments import du_search

    config = du_search.full_config() if args.full else du_search.fast_config()
    result = du_search.run(config)
    rows = [
        (
            f"D{e.candidate.d}-U{e.candidate.u}",
            e.accuracy,
            e.sram_area_mm2,
            e.trainable_params,
        )
        for e in result.evaluations
    ]
    print(format_table(rows, ["candidate", "accuracy", "sram_mm2", "trainable"]))
    selected = result.selected
    print(
        f"\nselected: D={selected.candidate.d} U={selected.candidate.u} "
        f"(accuracy floor {result.accuracy_floor:.3f})"
    )
    return 0


def _cmd_subbit(args: argparse.Namespace) -> int:
    from repro.experiments import related_work_quant

    config = (
        related_work_quant.full_config()
        if args.full
        else related_work_quant.fast_config()
    )
    result = related_work_quant.run(config)
    print(f"baselines: {result.baselines}")
    print(
        format_table(
            result.rows(), ["model", "scheme", "accuracy", "drop", "weight_err"]
        )
    )
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    from repro.experiments import runtime_study

    config = runtime_study.full_config() if args.full else runtime_study.fast_config()
    result = runtime_study.run(config)
    print(
        f"compile: {result.compile_ms:.1f} ms "
        f"({result.engines_programmed} engines programmed once; "
        f"{result.cache_hits} cache hits / {result.cache_misses} misses)"
    )
    print(
        format_table(
            result.rows(),
            [
                "regime",
                "calls",
                "samples",
                "compiled_ms",
                "reference_ms",
                "speedup",
                "bitwise",
            ],
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import nn
    from repro.serve import (
        BatchPolicy,
        InferenceServer,
        LoadGenerator,
        LoadSpec,
        ModelRegistry,
    )

    rng = np.random.default_rng(args.seed)
    zoo = {
        "mlp-small": nn.Sequential(
            nn.Linear(128, 64, rng=rng), nn.ReLU(), nn.Linear(64, 10, rng=rng)
        ),
        "mlp-wide": nn.Sequential(
            nn.Linear(128, 96, rng=rng), nn.ReLU(), nn.Linear(96, 10, rng=rng)
        ),
    }
    registry = ModelRegistry()
    for name, model in zoo.items():
        registry.register(name, model)
    print("registry:")
    print(format_table(registry.rows(), ["model", "layers", "gen", "compile_ms"]))

    policy = BatchPolicy(
        max_batch_size=args.batch,
        max_wait_s=args.wait_ms / 1000.0,
        max_queue_depth=args.queue_depth,
    )
    pool_rng = np.random.default_rng(args.seed + 1)
    pools = {name: pool_rng.normal(size=(64, 128)) for name in zoo}
    spec = LoadSpec(
        n_requests=args.requests,
        rate_rps=args.rate if args.rate > 0 else None,
        tenant_weights={"alice": 3.0, "bob": 2.0, "carol": 1.0},
        seed=args.seed,
    )
    server = InferenceServer(registry, policy, n_workers=args.workers)
    with server:
        report = LoadGenerator(server, spec, pools).run()
        snapshot = server.snapshot()

    print(
        f"\nload: {report.completed}/{report.n_requests} completed, "
        f"{report.rejected} rejected, {report.failed} failed in "
        f"{report.wall_s * 1e3:.0f} ms ({report.throughput_rps:.0f} req/s)"
    )
    print("\nserver metrics:")
    print(format_table(snapshot.rows(), ["metric", "value"]))
    print("\nbatch-size histogram:")
    hist = sorted(snapshot.batch_size_hist.items())
    print(format_table(hist, ["batch_samples", "count"]))
    print("\nper-tenant accounting:")
    print(
        format_table(
            snapshot.tenant_rows(),
            ["tenant", "completed", "samples", "rejected", "failed", "cancelled", "nJ_per_sample", "MMACs_per_sample"],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="YOLoC (DAC'22) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="model zoo profiles")
    info.add_argument("--verbose", action="store_true")
    info.add_argument("--model", default="vgg8", choices=models.available_models())
    info.set_defaults(func=_cmd_info)

    sub.add_parser("table1", help="Table I report").set_defaults(func=_cmd_table1)
    sub.add_parser("fig14", help="system comparison").set_defaults(func=_cmd_fig14)
    sub.add_parser("packing", help="subarray packing ablation").set_defaults(
        func=_cmd_packing
    )
    sub.add_parser("designspace", help="ADC/rows design space").set_defaults(
        func=_cmd_designspace
    )
    sub.add_parser("training", help="on-chip training costs").set_defaults(
        func=_cmd_training
    )
    sub.add_parser("variation", help="device-variation Monte-Carlo").set_defaults(
        func=_cmd_variation
    )

    serve = sub.add_parser("serve", help="dynamic-batching serving demo")
    serve.add_argument("--requests", type=int, default=128, help="total requests")
    serve.add_argument(
        "--rate", type=float, default=2000.0,
        help="Poisson offered load in req/s (0 = unpaced burst)",
    )
    serve.add_argument("--batch", type=int, default=16, help="max batch samples")
    serve.add_argument("--wait-ms", type=float, default=2.0, help="max batching wait")
    serve.add_argument("--queue-depth", type=int, default=256, help="admission bound")
    serve.add_argument("--workers", type=int, default=2, help="worker threads")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=_cmd_serve)

    chiplets = sub.add_parser("chiplets", help="ROM vs SRAM chiplet assemblies")
    chiplets.add_argument(
        "--model", default="yolo", choices=models.available_models()
    )
    chiplets.set_defaults(func=_cmd_chiplets)

    for name, handler in [
        ("fig6b", _cmd_fig6b),
        ("fig10", _cmd_fig10),
        ("fig11", _cmd_fig11),
        ("fig12", _cmd_fig12),
        ("options", _cmd_options),
        ("encoding", _cmd_encoding),
        ("pingpong", _cmd_pingpong),
        ("dusearch", _cmd_dusearch),
        ("subbit", _cmd_subbit),
        ("runtime", _cmd_runtime),
    ]:
        cmd = sub.add_parser(name, help=f"run the {name} experiment")
        cmd.add_argument("--full", action="store_true", help="full budget")
        cmd.set_defaults(func=handler)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
