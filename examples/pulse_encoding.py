#!/usr/bin/env python
"""Activation encodings: bit-serial vs unary pulses vs pulse width.

Section 3.1 of the paper describes streaming activations as unary
pulses and remarks that "the input activation encoding method using the
pulse width may also be used with a different speed-accuracy
trade-off".  This example measures that trade-off on the functional
macro model:

1. run the same integer MVM workload through all three encodings at
   2/4/8-bit activations, printing cycles, conversions, error, and
   energy per MAC;
2. sweep pulse-width timing jitter behind a fine ADC to show where the
   "accuracy" half of the trade-off comes from — and why it is
   invisible behind the macro's own 5-bit column ADC.

Run:  python examples/pulse_encoding.py
"""

from repro.experiments import encoding_study
from repro.experiments.common import format_table


def design_space() -> None:
    print("=== Encoding design space (section 3.1) ===")
    result = encoding_study.run(encoding_study.full_config())
    print(
        format_table(
            result.rows(),
            [
                "encoding",
                "bits",
                "wl_cycles",
                "conv/col",
                "rel_error",
                "fJ_per_mac",
                "ns_per_vec",
            ],
        )
    )
    keys = result.by_key()
    serial = keys[("bit-serial", 8)]
    unary = keys[("unary-pulse", 8)]
    pw = keys[("pulse-width", 8)]
    print(
        f"\nat 8-bit activations: pulse-width is "
        f"{serial.latency_ns / pw.latency_ns:.1f}x faster than bit-serial, "
        f"unary is {unary.latency_ns / serial.latency_ns:.1f}x slower; "
        f"both pulse encodings cut ADC conversions by "
        f"{serial.conversions_per_column}x."
    )


def jitter() -> None:
    print("\n=== Pulse-width timing jitter (fine 12-bit ADC) ===")
    rows = encoding_study.jitter_sweep()
    print(
        format_table(
            [(r["jitter_sigma_slots"], r["rel_error"]) for r in rows],
            ["jitter_slots", "rel_error"],
        )
    )
    print("\n=== Same sweep behind the macro's 5-bit ADC ===")
    coarse = encoding_study.EncodingStudyConfig(adc_bits=5)
    rows = encoding_study.jitter_sweep(config=coarse)
    print(
        format_table(
            [(r["jitter_sigma_slots"], r["rel_error"]) for r in rows],
            ["jitter_slots", "rel_error"],
        )
    )
    print(
        "\nBehind the 5-bit column ADC the quantization step (~4 counts)"
        "\nswallows slot-level jitter: the speed-accuracy trade-off only"
        "\nbites once the conversion path stops being the bottleneck."
    )


def main() -> None:
    design_space()
    jitter()


if __name__ == "__main__":
    main()
