#!/usr/bin/env python
"""Quickstart: transfer a frozen "ROM" model to a new task with ReBranch.

Walks the whole YOLoC story in about a minute on a laptop CPU:

1. pretrain a scaled VGG-8 on the synthetic source task (this is the
   model you would mask-program into ROM-CiM);
2. freeze it and attach residual branches (``apply_rebranch``);
3. fine-tune only the branches on a shifted target task;
4. report accuracy against the all-trainable and fully-frozen baselines,
   and the memory-area saving from the CiM area model.

Run:  python examples/quickstart.py

Setting ``REPRO_EXAMPLE_SMOKE=1`` shrinks the budgets to a seconds-scale
smoke run (used by ``tests/test_examples.py``).
"""

import os

import numpy as np

from repro import models
from repro.datasets import classification_suite
from repro.experiments.common import clone_with_new_head, pretrain_classifier
from repro.rebranch import (
    TrainConfig,
    TransferTrainer,
    apply_all_rom,
    apply_all_sram,
    apply_rebranch,
    method_footprint,
)


#: REPRO_EXAMPLE_SMOKE=1 shrinks every budget to a seconds-scale run.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    suite = classification_suite(seed=0)

    print("=== 1. Pretrain the source model (future ROM contents) ===")
    bundle = pretrain_classifier(
        "vgg8",
        suite,
        width_mult=0.125,
        train_config=TrainConfig(epochs=1 if SMOKE else 10, lr=2e-3, batch_size=64),
        n_train=64 if SMOKE else 600,
        n_test=32 if SMOKE else 300,
    )
    print(f"source-task accuracy: {bundle.source_accuracy:.3f}")

    print("\n=== 2-3. Transfer to a shifted target task ===")
    target = suite.target_splits(
        "far", n_train=48 if SMOKE else 300, n_test=32 if SMOKE else 300
    )
    train_cfg = TrainConfig(epochs=1 if SMOKE else 8, lr=2e-3, batch_size=64)

    results = {}
    for name, policy in [
        ("all_sram (everything trainable)", apply_all_sram),
        ("all_rom  (classifier only)", apply_all_rom),
        (
            "rebranch (proposed)",
            lambda m: apply_rebranch(m, d=4, u=4, rng=np.random.default_rng(7)),
        ),
    ]:
        model = clone_with_new_head(bundle, target.num_classes)
        policy(model)
        result = TransferTrainer(model, train_cfg).fit(
            target.x_train, target.y_train, target.x_test, target.y_test
        )
        footprint = method_footprint(model)
        results[name] = (result.test_accuracy, footprint)
        print(
            f"{name:35s} accuracy={result.test_accuracy:.3f} "
            f"trainable={result.trainable_params:,} "
            f"(ROM {footprint.rom_bits / 8e3:.0f} kB / "
            f"SRAM {footprint.sram_bits / 8e3:.0f} kB)"
        )

    print("\n=== 4. Memory-area accounting (28nm CiM macro model) ===")
    baseline = results["all_sram (everything trainable)"][1]
    for name, (_, footprint) in results.items():
        print(
            f"{name:35s} area={footprint.total_area_mm2:8.4f} mm^2 "
            f"({footprint.normalized_to(baseline):.2f}x of all-SRAM)"
        )


if __name__ == "__main__":
    main()
