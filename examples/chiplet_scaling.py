#!/usr/bin/env python
"""ROM-CiM chiplets: the paper's named future work, measured.

Section 4.3.3 closes with "future works ... (including ROM-CiM
chiplets) are promising".  This example partitions the YOLoC
organization across multiple dies and compares it against the paper's
SRAM-CiM chiplet baseline on the YOLO (DarkNet-19) model:

1. sweep the per-die area budget and print die counts, total silicon,
   and per-inference energy for both assemblies;
2. print the single-die YOLoC area against the reticle limit — the
   point past which chiplets stop being an optimization and become the
   only DRAM-free deployment.

Run:  python examples/chiplet_scaling.py
"""

import numpy as np

from repro import models
from repro.arch import (
    RETICLE_LIMIT_MM2,
    chiplet_scaling,
    reticle_escape_area_mm2,
)
from repro.experiments.common import format_table


def main() -> None:
    print("profiling YOLO (DarkNet-19 backbone) at 416x416 ...")
    model = models.build_model("yolo", rng=np.random.default_rng(0))
    profile = models.profile_model(model, (1, 3, 416, 416))

    print("\n=== Die-area sweep: ROM vs SRAM chiplet assemblies ===")
    result = chiplet_scaling(
        profile, die_areas_mm2=(15.0, 25.0, 50.0, 100.0), model_name="yolo"
    )
    rows = [
        (
            p.die_area_mm2,
            p.rom_chips,
            p.sram_chips,
            p.chip_count_ratio,
            p.rom_area_cm2,
            p.sram_area_cm2,
            p.rom_energy_uj,
            p.sram_energy_uj,
        )
        for p in result.points
    ]
    print(
        format_table(
            rows,
            [
                "die_mm2",
                "rom_chips",
                "sram_chips",
                "chipsX",
                "rom_cm2",
                "sram_cm2",
                "rom_uJ",
                "sram_uJ",
            ],
        )
    )

    monolithic = reticle_escape_area_mm2(profile)
    print(
        f"\nsingle-die YOLoC for YOLO: {monolithic:.0f} mm^2 "
        f"(reticle limit {RETICLE_LIMIT_MM2:.0f} mm^2)"
    )
    print(
        "ROM chiplets keep the order-of-magnitude silicon saving of the\n"
        "single-chip YOLoC while lifting its reticle ceiling; energy lands\n"
        "near parity with the SRAM assembly because the ReBranch layers\n"
        "add ~15% extra MACs — the win is area and cost, not energy."
    )


if __name__ == "__main__":
    main()
