#!/usr/bin/env python
"""YOLoC end-to-end: detection transfer + full-size system report.

Part 1 trains a scaled YOLO-style detector on the synthetic "COCO
analog", migrates it to the "VOC analog" with ReBranch, and reports
mAP@0.5 against the fully-trainable baseline (Fig. 12's accuracy half).

Part 2 evaluates the *full-size* YOLO (DarkNet-19, ~46M weights) on the
three Fig. 13 system configurations and prints the Fig. 14 comparison:
chip area, per-inference energy with breakdown, latency, and the
energy-efficiency improvement of YOLoC.

Run:  python examples/detection_yoloc.py

Setting ``REPRO_EXAMPLE_SMOKE=1`` shrinks the budgets to a seconds-scale
smoke run (used by ``tests/test_examples.py``).
"""

import os

import numpy as np

from repro import models
from repro.arch import SramChipletSystem, SramSingleChipSystem, YolocSystem
from repro.experiments.detection import (
    DetectionTrainConfig,
    build_scaled_detector,
    evaluate_map,
    sample_task,
    train_detector,
)
from repro.datasets import detection_suite
from repro.rebranch import apply_rebranch


#: REPRO_EXAMPLE_SMOKE=1 shrinks every budget to a seconds-scale run.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))
N_TRAIN = 16 if SMOKE else 128
N_TEST = 8 if SMOKE else 64


def detection_transfer() -> None:
    print("=== Part 1: detection transfer (scaled models) ===")
    suite = detection_suite(seed=0, image_size=32 if SMOKE else 48)
    source, target = suite["source"], suite["voc"]

    (imgs, boxes, labels), (t_imgs, t_boxes, t_labels) = sample_task(
        source, n_train=N_TRAIN, n_test=N_TEST, seed=0
    )
    detector = build_scaled_detector("yolo", source.config.num_classes,
                                     rng=np.random.default_rng(0))
    train_detector(
        detector, imgs, boxes, labels,
        DetectionTrainConfig(epochs=1 if SMOKE else 10),
    )
    print(f"source mAP@0.5: {evaluate_map(detector, t_imgs, t_boxes, t_labels):.3f}")
    state = detector.state_dict()

    (imgs, boxes, labels), (t_imgs, t_boxes, t_labels) = sample_task(
        target, n_train=N_TRAIN, n_test=N_TEST, seed=5
    )
    for method in ("all-trainable (SRAM-CiM)", "rebranch (YOLoC)"):
        model = build_scaled_detector("yolo", target.config.num_classes,
                                      rng=np.random.default_rng(1))
        model.load_state_dict(state)
        if "rebranch" in method:
            apply_rebranch(model.backbone, d=4, u=4, skip_last=False,
                           rng=np.random.default_rng(2))
        train_detector(
            model, imgs, boxes, labels,
            DetectionTrainConfig(epochs=1 if SMOKE else 8),
        )
        trainable = sum(p.size for p in model.parameters() if p.requires_grad)
        print(
            f"{method:28s} mAP@0.5={evaluate_map(model, t_imgs, t_boxes, t_labels):.3f}"
            f"  trainable={trainable:,}"
        )


def system_report() -> None:
    print("\n=== Part 2: full-size YOLO system evaluation (Fig. 14) ===")
    profile = models.profile_model(
        models.yolo_v2(rng=np.random.default_rng(0)), (1, 3, 416, 416)
    )
    print(
        f"YOLO (DarkNet-19): {profile.total_params / 1e6:.1f}M weights, "
        f"{profile.total_macs / 1e9:.1f} GMAC / inference"
    )

    yoloc = YolocSystem().evaluate(profile)
    chip_area = SramSingleChipSystem().area_for_capacity(52_000_000)
    single = SramSingleChipSystem(chip_area_mm2=chip_area).evaluate(profile)
    chiplet = SramChipletSystem(chiplet_area_mm2=chip_area).evaluate(profile)

    for report in (yoloc, single, chiplet):
        fractions = report.energy.fractions()
        print(
            f"\n{report.system}: area={report.area.total_cm2:.2f} cm^2 "
            f"(x{report.n_chips} chip), "
            f"E={report.energy_per_inference_uj:.0f} uJ/inf, "
            f"latency={report.latency_ns / 1e6:.2f} ms, "
            f"{report.tops_per_w:.1f} TOPS/W"
        )
        print(
            "  energy breakdown: "
            + ", ".join(f"{k}={v * 100:.0f}%" for k, v in fractions.items())
        )
    print(
        f"\nYOLoC energy-efficiency improvement: "
        f"{single.energy.total_pj / yoloc.energy.total_pj:.1f}x vs single chip, "
        f"{chiplet.energy.total_pj / yoloc.energy.total_pj:.2f}x vs chiplets "
        f"({chiplet.area.total_mm2 / yoloc.area.total_mm2:.1f}x area saving)"
    )


if __name__ == "__main__":
    detection_transfer()
    system_report()
