#!/usr/bin/env python
"""Reliability studies: device variation and on-chip transport.

Two analyses that back the paper's prose with numbers:

1. Section 2 motivates CMOS ROM partly by reliability.  A Monte-Carlo
   over virtual chips measures how much *static* cell mismatch and ADC
   offset the bit-serial arithmetic absorbs, and reports the largest
   mismatch sigma that fits a 5% error budget.
2. Fig. 9 draws a NoC but the paper folds on-chip transport into the
   buffer energy.  A 2-D mesh model with a serpentine layer floorplan
   checks that simplification: transport stays well under 1% of
   compute energy for every benchmark model.

Run:  python examples/reliability.py
"""

import numpy as np

from repro import models
from repro.arch import MeshNocSpec, map_layers_to_tiles, noc_share_of_compute
from repro.arch.mapping import map_model
from repro.cim import tolerable_cell_sigma, variation_sweep
from repro.cim.spec import rom_macro_spec
from repro.experiments.common import format_table

BENCHMARKS = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)


def variation() -> None:
    print("=== Static device variation (Monte-Carlo over virtual chips) ===")
    results = variation_sweep()
    rows = [
        (v.cell_sigma, v.adc_offset_sigma, r.mean, r.p95, r.worst)
        for v, r in results
    ]
    print(
        format_table(
            rows, ["cell_sigma", "adc_offset", "mean_err", "p95_err", "worst"]
        )
    )
    sigma = tolerable_cell_sigma(error_budget=0.05)
    print(
        f"\nlargest cell-mismatch sigma within a 5% error budget: {sigma:.2f}"
        "\n(1-2 count ADC offsets vanish inside the 5-bit quantization step)"
    )


def noc() -> None:
    print("\n=== NoC transport share of compute energy (Fig. 9) ===")
    rng = np.random.default_rng(0)
    spec = MeshNocSpec(rows=4, cols=4)
    rows = []
    for name, shape in BENCHMARKS:
        profile = models.profile_model(models.build_model(name, rng=rng), shape)
        mapping = map_model(profile, "yoloc")
        compute_pj = mapping.total_macs * rom_macro_spec().energy_per_op_fj / 1000.0
        report = map_layers_to_tiles(profile, spec)
        rows.append(
            (
                name,
                report.total_bits / 1e6,
                report.total_energy_pj / 1e6,
                noc_share_of_compute(profile, compute_pj),
                report.max_link_load_bits / 1e6,
            )
        )
    print(
        format_table(
            rows, ["model", "traffic_Mb", "noc_uJ", "share", "hot_link_Mb"]
        )
    )
    print(
        "\nTransport is <1% of compute for every model: folding the NoC"
        "\ninto the buffer term (as the paper's accounting does) is sound."
    )


def main() -> None:
    variation()
    noc()


if __name__ == "__main__":
    main()
