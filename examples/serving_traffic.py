"""Dynamic-batching serving: traffic in, coalesced batches out.

``examples/runtime_serving.py`` showed the compile-once split for one
caller streaming its own batches.  This example adds the traffic layer:
three tenants fire independent single-sample requests at two registered
models, the server coalesces them into dynamic batches (round-robin
fair across tenants, bounded admission), and every tenant gets its own
energy accounting.

Run:  PYTHONPATH=src python examples/serving_traffic.py
"""

import numpy as np

from repro import nn
from repro.runtime import reference_forward
from repro.serve import (
    BatchPolicy,
    InferenceServer,
    LoadGenerator,
    LoadSpec,
    ModelRegistry,
)


def build_model(width, rng):
    return nn.Sequential(
        nn.Linear(64, width, rng=rng),
        nn.ReLU(),
        nn.Linear(width, 10, rng=rng),
    )


def main():
    rng = np.random.default_rng(0)
    registry = ModelRegistry()
    registry.register("small", build_model(32, rng))
    registry.register("wide", build_model(48, rng))
    print(f"registered: {registry.names()}")

    policy = BatchPolicy(max_batch_size=8, max_wait_s=0.002, max_queue_depth=128)
    server = InferenceServer(registry, policy, n_workers=2, record_batches=True)
    pools = {name: np.random.default_rng(1).normal(size=(32, 64)) for name in registry.names()}
    spec = LoadSpec(
        n_requests=48,
        rate_rps=3000.0,  # Poisson arrivals at 3k req/s
        tenant_weights={"alice": 3.0, "bob": 2.0, "carol": 1.0},
        seed=2,
    )
    with server:
        report = LoadGenerator(server, spec, pools).run()
        snapshot = server.snapshot()

    print(
        f"served {report.completed}/{report.n_requests} requests in "
        f"{report.wall_s * 1e3:.0f} ms ({report.throughput_rps:.0f} req/s), "
        f"p95 latency {report.p95_latency_s * 1e3:.2f} ms"
    )
    print(f"batch-size histogram: {dict(sorted(snapshot.batch_size_hist.items()))}")
    for tenant in snapshot.tenants:
        print(
            f"  {tenant.tenant}: {tenant.completed} requests, "
            f"{tenant.energy_per_sample_fj / 1e6:.2f} nJ/sample"
        )

    # The scheduler adds batching, never arithmetic: each executed batch
    # replays bitwise through the seed per-call oracle.
    batch = server.executed_batches[0]
    expected, _ = reference_forward(registry.get(batch.model).model, batch.inputs)
    assert np.array_equal(batch.outputs, expected)
    print("executed batches are bitwise identical to the reference path")


if __name__ == "__main__":
    main()
