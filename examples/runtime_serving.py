"""Compile-once serving: program macros once, stream many requests.

The ROM-CiM chip programs its subarrays at fabrication; every inference
afterwards just streams activations.  This example mirrors that split
with ``repro.runtime``: a classifier is compiled once, then serves a
stream of single-sample requests while a second "tenant" compiles the
same model and transparently shares the programmed engines through the
process-wide cache.

Run:  PYTHONPATH=src python examples/runtime_serving.py
"""

import numpy as np

from repro import nn
from repro.runtime import (
    RuntimeConfig,
    compile,
    get_default_cache,
    reference_forward,
)


def build_model(rng):
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(16 * 8 * 8, 10, rng=rng),
    )


def main():
    model = build_model(np.random.default_rng(0))
    compiled = compile(model, RuntimeConfig())
    print(f"programmed {compiled.n_weight_layers} weight layers once")

    requests = np.random.default_rng(1).normal(size=(8, 3, 16, 16))
    session = compiled.new_session()
    for i in range(requests.shape[0]):
        outputs, stats = compiled.run(requests[i : i + 1], session=session)
        print(
            f"request {i}: top class {int(outputs.argmax())}, "
            f"{stats.total_energy_fj / 1e6:.2f} nJ, {stats.latency_ns:.0f} ns"
        )
    print(
        f"session: {session.samples} samples, "
        f"{session.stats.macs / 1e6:.1f} M MACs, "
        f"{session.energy_per_sample_fj / 1e6:.2f} nJ/sample"
    )

    # A second session over the same weights shares the programmed macros.
    cache = get_default_cache()
    hits_before = cache.stats.hits
    compile(model, RuntimeConfig())
    print(f"second compile reused engines ({cache.stats.hits - hits_before} cache hits)")

    # The compiled path is a restructuring, not an approximation:
    expected, _ = reference_forward(model, requests[:1])
    got, _ = compiled.run(requests[:1])
    assert np.array_equal(expected, got)
    print("bitwise identical to the seed per-call path")


if __name__ == "__main__":
    main()
