#!/usr/bin/env python
"""Design-space exploration: branch compression and macro circuits.

Part 1 sweeps the ReBranch compression/decompression ratios (Fig. 11)
on the synthetic transfer suite and prints the accuracy/area frontier.

Part 2 explores the ROM-CiM macro itself: Table I from the circuit
model, then the accuracy impact of the column ADC resolution on real
matrix-vector products (the "number of ADCs vs activated rows" trade-off
the paper flags for future work).

Run:  python examples/design_space.py

Setting ``REPRO_EXAMPLE_SMOKE=1`` shrinks the budgets to a seconds-scale
smoke run (used by ``tests/test_examples.py``).
"""

import os

import numpy as np

from repro.cim import AdcSpec, CimTiledMatmul, MacroConfig
from repro.experiments import fig11, table1
from repro.experiments.common import format_table

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def branch_sweep() -> None:
    print("=== Part 1: ReBranch D/U sweep (Fig. 11) ===")
    config = fig11.fast_config()
    if SMOKE:
        config.pretrain_epochs = 1
        config.transfer_epochs = 1
        config.n_train = 48
        config.n_test = 32
        config.ratio_sweep = ((4, 4),)
        config.split_sweep = ((4, 4),)
    result = fig11.run(config)
    rows = [
        (f"D{p.d} x U{p.u}", p.du, p.accuracy, p.normalized_area, p.trainable_params)
        for p in result.ratio_points + result.split_points
    ]
    print(format_table(rows, ["point", "D*U", "accuracy", "norm_area", "trainable"]))
    best_d, best_u = result.best_split("vgg8")
    print(f"best split at D*U=16: D={best_d}, U={best_u} (paper: D=U=4)")


def macro_design_space() -> None:
    print("\n=== Part 2: ROM-CiM macro model (Table I) ===")
    print(table1.format_report(table1.run()))

    print("\nADC resolution vs MVM fidelity (128-row subarrays):")
    rng = np.random.default_rng(0)
    size = (128, 8) if SMOKE else (256, 32)
    weights = rng.integers(-128, 128, size=size)
    x = rng.integers(0, 256, size=(size[0], 4 if SMOKE else 16))
    exact = weights.T @ x
    rows = []
    for bits in (5,) if SMOKE else (4, 5, 6, 7, 8):
        config = MacroConfig(adc=AdcSpec(bits=bits))
        engine = CimTiledMatmul(weights, config, rng=np.random.default_rng(1))
        approx, stats = engine.matmul(x)
        rel = float(np.abs(approx - exact).mean() / np.abs(exact).mean())
        rows.append((bits, rel, stats.energy_per_mac_fj, stats.latency_ns))
    print(
        format_table(rows, ["adc_bits", "mean_rel_err", "fJ_per_mac", "latency_ns"])
    )
    print("(5 bits is the paper's design point; error falls to zero once")
    print(" the ADC resolves every activated row.)")


if __name__ == "__main__":
    branch_sweep()
    macro_design_space()
