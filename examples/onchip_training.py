#!/usr/bin/env python
"""On-chip training cost: full model vs ReBranch-only (section 3.3).

The paper notes that YOLoC "provides a chance to greatly reduce the
on-chip training overhead" because only the SRAM-resident branch
weights ever update.  This example:

1. costs one SGD step for the four benchmark models under full-model
   and ReBranch-only training (compute, array writes, optimizer state,
   DRAM spill);
2. shows the ping-pong scheduling result for the models whose *inference*
   weights must stream from DRAM — latency relieved, energy untouched
   (section 4.3.3).

Run:  python examples/onchip_training.py
"""

import numpy as np

from repro import models
from repro.arch import TrainingCostModel
from repro.experiments import pipeline_study
from repro.experiments.common import format_table

BENCHMARKS = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)


def training_costs() -> None:
    print("=== One SGD step: full-model vs ReBranch-only (section 3.3) ===")
    cost_model = TrainingCostModel()
    rng = np.random.default_rng(0)
    rows = []
    for name, shape in BENCHMARKS:
        profile = models.profile_model(models.build_model(name, rng=rng), shape)
        summary = cost_model.summary(profile)
        rows.append(
            (
                name,
                summary["full_step_uj"],
                summary["rebranch_step_uj"],
                summary["energy_saving"],
                summary["trainable_reduction"],
                summary["full_dram_uj"],
            )
        )
    print(
        format_table(
            rows,
            [
                "model",
                "full_uJ/step",
                "rebranch_uJ/step",
                "saving",
                "trainableX",
                "full_dram_uJ",
            ],
        )
    )


def pingpong() -> None:
    print("\n=== Ping-pong weight reload for inference (section 4.3.3) ===")
    result = pipeline_study.run(pipeline_study.full_config())
    rows = [
        (
            r["model"],
            r["resident_fraction"],
            r["serial_ns"] / 1e6,
            r["pingpong_ns"] / 1e6,
            r["latency_relief"],
        )
        for r in result.rows
    ]
    print(
        format_table(
            rows, ["model", "resident", "serial_ms", "pingpong_ms", "relief"]
        )
    )
    print(
        "DRAM energy is identical under both schedules — the overlap\n"
        '"relieve[s] the latency issue, but little could be done to the\n'
        'energy overhead" (section 4.3.3).'
    )


def main() -> None:
    training_costs()
    pingpong()


if __name__ == "__main__":
    main()
