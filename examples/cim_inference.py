#!/usr/bin/env python
"""Run a trained network's convolutions through the bit-serial CiM macro.

Demonstrates the *functional* half of the CiM simulation: after training
a small classifier in float, its convolution and linear layers are
re-executed through :func:`repro.cim.cim_conv2d` / ``cim_linear`` —
8-bit quantized weights in subarray tiles, bit-serial activations,
bit-line charge sharing, and the shared column ADC — and the end-to-end
classification accuracy is compared against the float model for several
ADC resolutions.

Run:  python examples/cim_inference.py

Setting ``REPRO_EXAMPLE_SMOKE=1`` shrinks the budgets to a seconds-scale
smoke run (used by ``tests/test_examples.py``).
"""

import os

import numpy as np

from repro import nn
from repro.cim import AdcSpec, MacroConfig, cim_conv2d, cim_linear
from repro.datasets import classification_suite
from repro.nn.tensor import Tensor
from repro.rebranch import TrainConfig, TransferTrainer


#: REPRO_EXAMPLE_SMOKE=1 shrinks every budget to a seconds-scale run.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def build_and_train(splits):
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(3, 24, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(24, 48, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(48 * 4 * 4, splits.num_classes, rng=rng),
    )
    TransferTrainer(model, TrainConfig(epochs=1 if SMOKE else 15, lr=2e-3)).fit(
        splits.x_train, splits.y_train
    )
    return model


def cim_forward(model, x: np.ndarray, config: MacroConfig, rng) -> np.ndarray:
    """Re-execute the trained model with every MVM on the CiM macro."""
    conv1, conv2, linear = model[0], model[3], model[7]

    def maxpool2(t):
        n, c, height, width = t.shape
        return t.reshape(n, c, height // 2, 2, width // 2, 2).max(axis=(3, 5))

    h, stats1 = cim_conv2d(
        x, conv1.weight.data, stride=1, padding=1, config=config, rng=rng
    )
    h = maxpool2(np.maximum(h + conv1.bias.data.reshape(1, -1, 1, 1), 0.0))
    h, stats2 = cim_conv2d(
        h, conv2.weight.data, stride=1, padding=1, config=config, rng=rng
    )
    h = maxpool2(np.maximum(h + conv2.bias.data.reshape(1, -1, 1, 1), 0.0))
    h = h.reshape(h.shape[0], -1)
    logits, stats3 = cim_linear(h, linear.weight.data, config=config, rng=rng)
    logits = logits + linear.bias.data
    total = stats1 + stats2 + stats3
    return logits, total


def main() -> None:
    suite = classification_suite(seed=0)
    splits = suite.source_splits(
        n_train=48 if SMOKE else 400, n_test=24 if SMOKE else 200
    )
    model = build_and_train(splits)
    model.eval()

    with nn.no_grad():
        float_logits = model(Tensor(splits.x_test)).data
    float_acc = (float_logits.argmax(1) == splits.y_test).mean()
    print(f"float32 accuracy: {float_acc:.3f}")

    x = splits.x_test
    print(f"\n{'ADC bits':>9} {'CiM accuracy':>13} {'fJ/MAC':>8} {'total uJ':>9}")
    for bits in (5,) if SMOKE else (8, 6, 5, 4, 3):
        config = MacroConfig(adc=AdcSpec(bits=bits))
        logits, stats = cim_forward(model, x, config, np.random.default_rng(1))
        acc = (logits.argmax(1) == splits.y_test).mean()
        print(
            f"{bits:>9} {acc:>13.3f} {stats.energy_per_mac_fj:>8.1f} "
            f"{stats.total_energy_fj / 1e9:>9.3f}"
        )
    print("\n(The paper's design point is the 5-bit column ADC: most of the")
    print(" float accuracy survives because partial sums rarely exercise the")
    print(" full 128-row range; below 5 bits the MVM fidelity collapses.)")


if __name__ == "__main__":
    main()
