#!/usr/bin/env python
"""Fig. 10-style generalization study across all four target tasks.

Transfers a source-pretrained VGG-8 to every target of the synthetic
suite using the four deployment options and prints the accuracy / area
table the paper plots in Fig. 10.

Run:  python examples/classify_transfer.py [--full]

``--full`` uses the paper-scale budget (several minutes); the default
is a reduced budget (about a minute).  Setting ``REPRO_EXAMPLE_SMOKE=1``
shrinks it further to a seconds-scale smoke run (used by
``tests/test_examples.py``).
"""

import argparse
import os

from repro.experiments import fig10
from repro.experiments.common import format_table

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run the full paper-scale budget"
    )
    args = parser.parse_args()

    config = fig10.full_config() if args.full else fig10.fast_config()
    if SMOKE and not args.full:
        config.targets = ("near",)
        config.pretrain_epochs = 1
        config.transfer_epochs = 1
        config.n_train = 48
        config.n_test = 32
    elif not args.full:
        # The default fast config covers one target; widen to all four
        # while keeping the reduced training budget.
        config.targets = ("near", "simple", "medium", "far")
    result = fig10.run(config)

    print("source accuracy:", {k: round(v, 3) for k, v in result.source_accuracy.items()})
    print()
    rows = [
        (
            r.model,
            r.target,
            r.method,
            r.accuracy,
            r.normalized_area,
            r.trainable_params,
        )
        for r in result.rows
    ]
    print(
        format_table(
            rows, ["model", "target", "method", "accuracy", "norm_area", "trainable"]
        )
    )

    print("\nFig. 10(b) normalized memory area (All-SRAM = 1.0):")
    for model, areas in result.area_table().items():
        print(f"  {model}: ", {k: round(v, 3) for k, v in areas.items()})


if __name__ == "__main__":
    main()
